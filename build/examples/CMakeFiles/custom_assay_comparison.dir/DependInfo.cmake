
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_assay_comparison.cpp" "examples/CMakeFiles/custom_assay_comparison.dir/custom_assay_comparison.cpp.o" "gcc" "examples/CMakeFiles/custom_assay_comparison.dir/custom_assay_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/pdw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wash/CMakeFiles/pdw_wash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdw_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/assay/CMakeFiles/pdw_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/pdw_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

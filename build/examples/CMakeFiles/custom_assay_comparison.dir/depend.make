# Empty dependencies file for custom_assay_comparison.
# This may be replaced when dependencies are built.

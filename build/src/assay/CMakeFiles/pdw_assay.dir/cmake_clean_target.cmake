file(REMOVE_RECURSE
  "libpdw_assay.a"
)

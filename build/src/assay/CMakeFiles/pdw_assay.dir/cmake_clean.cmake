file(REMOVE_RECURSE
  "CMakeFiles/pdw_assay.dir/benchmarks.cpp.o"
  "CMakeFiles/pdw_assay.dir/benchmarks.cpp.o.d"
  "CMakeFiles/pdw_assay.dir/fluid.cpp.o"
  "CMakeFiles/pdw_assay.dir/fluid.cpp.o.d"
  "CMakeFiles/pdw_assay.dir/schedule.cpp.o"
  "CMakeFiles/pdw_assay.dir/schedule.cpp.o.d"
  "CMakeFiles/pdw_assay.dir/sequencing_graph.cpp.o"
  "CMakeFiles/pdw_assay.dir/sequencing_graph.cpp.o.d"
  "libpdw_assay.a"
  "libpdw_assay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_assay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

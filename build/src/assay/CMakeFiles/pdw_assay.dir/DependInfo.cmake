
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assay/benchmarks.cpp" "src/assay/CMakeFiles/pdw_assay.dir/benchmarks.cpp.o" "gcc" "src/assay/CMakeFiles/pdw_assay.dir/benchmarks.cpp.o.d"
  "/root/repo/src/assay/fluid.cpp" "src/assay/CMakeFiles/pdw_assay.dir/fluid.cpp.o" "gcc" "src/assay/CMakeFiles/pdw_assay.dir/fluid.cpp.o.d"
  "/root/repo/src/assay/schedule.cpp" "src/assay/CMakeFiles/pdw_assay.dir/schedule.cpp.o" "gcc" "src/assay/CMakeFiles/pdw_assay.dir/schedule.cpp.o.d"
  "/root/repo/src/assay/sequencing_graph.cpp" "src/assay/CMakeFiles/pdw_assay.dir/sequencing_graph.cpp.o" "gcc" "src/assay/CMakeFiles/pdw_assay.dir/sequencing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/pdw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

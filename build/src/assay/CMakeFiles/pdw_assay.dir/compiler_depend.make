# Empty compiler generated dependencies file for pdw_assay.
# This may be replaced when dependencies are built.

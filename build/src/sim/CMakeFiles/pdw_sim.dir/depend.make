# Empty dependencies file for pdw_sim.
# This may be replaced when dependencies are built.

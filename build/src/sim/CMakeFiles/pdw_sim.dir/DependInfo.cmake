
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/pdw_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/pdw_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/pdw_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/pdw_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/validator.cpp" "src/sim/CMakeFiles/pdw_sim.dir/validator.cpp.o" "gcc" "src/sim/CMakeFiles/pdw_sim.dir/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assay/CMakeFiles/pdw_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

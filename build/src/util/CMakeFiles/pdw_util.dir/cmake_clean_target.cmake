file(REMOVE_RECURSE
  "libpdw_util.a"
)

# Empty dependencies file for pdw_util.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pdw_util.dir/logging.cpp.o"
  "CMakeFiles/pdw_util.dir/logging.cpp.o.d"
  "CMakeFiles/pdw_util.dir/rng.cpp.o"
  "CMakeFiles/pdw_util.dir/rng.cpp.o.d"
  "CMakeFiles/pdw_util.dir/strings.cpp.o"
  "CMakeFiles/pdw_util.dir/strings.cpp.o.d"
  "CMakeFiles/pdw_util.dir/table.cpp.o"
  "CMakeFiles/pdw_util.dir/table.cpp.o.d"
  "libpdw_util.a"
  "libpdw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libpdw_wash.a"
)

# Empty compiler generated dependencies file for pdw_wash.
# This may be replaced when dependencies are built.

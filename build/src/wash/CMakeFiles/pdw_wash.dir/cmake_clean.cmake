file(REMOVE_RECURSE
  "CMakeFiles/pdw_wash.dir/contamination.cpp.o"
  "CMakeFiles/pdw_wash.dir/contamination.cpp.o.d"
  "CMakeFiles/pdw_wash.dir/necessity.cpp.o"
  "CMakeFiles/pdw_wash.dir/necessity.cpp.o.d"
  "CMakeFiles/pdw_wash.dir/rescheduler.cpp.o"
  "CMakeFiles/pdw_wash.dir/rescheduler.cpp.o.d"
  "CMakeFiles/pdw_wash.dir/wash_op.cpp.o"
  "CMakeFiles/pdw_wash.dir/wash_op.cpp.o.d"
  "libpdw_wash.a"
  "libpdw_wash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_wash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

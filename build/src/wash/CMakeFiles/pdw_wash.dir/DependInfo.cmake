
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wash/contamination.cpp" "src/wash/CMakeFiles/pdw_wash.dir/contamination.cpp.o" "gcc" "src/wash/CMakeFiles/pdw_wash.dir/contamination.cpp.o.d"
  "/root/repo/src/wash/necessity.cpp" "src/wash/CMakeFiles/pdw_wash.dir/necessity.cpp.o" "gcc" "src/wash/CMakeFiles/pdw_wash.dir/necessity.cpp.o.d"
  "/root/repo/src/wash/rescheduler.cpp" "src/wash/CMakeFiles/pdw_wash.dir/rescheduler.cpp.o" "gcc" "src/wash/CMakeFiles/pdw_wash.dir/rescheduler.cpp.o.d"
  "/root/repo/src/wash/wash_op.cpp" "src/wash/CMakeFiles/pdw_wash.dir/wash_op.cpp.o" "gcc" "src/wash/CMakeFiles/pdw_wash.dir/wash_op.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assay/CMakeFiles/pdw_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libpdw_baseline.a"
)

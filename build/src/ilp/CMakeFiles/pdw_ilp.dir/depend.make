# Empty dependencies file for pdw_ilp.
# This may be replaced when dependencies are built.

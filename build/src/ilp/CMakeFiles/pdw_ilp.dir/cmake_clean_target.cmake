file(REMOVE_RECURSE
  "libpdw_ilp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/pdw_ilp.dir/branch_bound.cpp.o"
  "CMakeFiles/pdw_ilp.dir/branch_bound.cpp.o.d"
  "CMakeFiles/pdw_ilp.dir/expr.cpp.o"
  "CMakeFiles/pdw_ilp.dir/expr.cpp.o.d"
  "CMakeFiles/pdw_ilp.dir/model.cpp.o"
  "CMakeFiles/pdw_ilp.dir/model.cpp.o.d"
  "CMakeFiles/pdw_ilp.dir/presolve.cpp.o"
  "CMakeFiles/pdw_ilp.dir/presolve.cpp.o.d"
  "CMakeFiles/pdw_ilp.dir/simplex.cpp.o"
  "CMakeFiles/pdw_ilp.dir/simplex.cpp.o.d"
  "CMakeFiles/pdw_ilp.dir/solver.cpp.o"
  "CMakeFiles/pdw_ilp.dir/solver.cpp.o.d"
  "libpdw_ilp.a"
  "libpdw_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pdw_arch.
# This may be replaced when dependencies are built.

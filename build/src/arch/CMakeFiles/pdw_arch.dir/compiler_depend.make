# Empty compiler generated dependencies file for pdw_arch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pdw_arch.dir/cell.cpp.o"
  "CMakeFiles/pdw_arch.dir/cell.cpp.o.d"
  "CMakeFiles/pdw_arch.dir/chip.cpp.o"
  "CMakeFiles/pdw_arch.dir/chip.cpp.o.d"
  "CMakeFiles/pdw_arch.dir/path.cpp.o"
  "CMakeFiles/pdw_arch.dir/path.cpp.o.d"
  "CMakeFiles/pdw_arch.dir/router.cpp.o"
  "CMakeFiles/pdw_arch.dir/router.cpp.o.d"
  "libpdw_arch.a"
  "libpdw_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

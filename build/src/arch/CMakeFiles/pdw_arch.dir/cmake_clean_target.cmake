file(REMOVE_RECURSE
  "libpdw_arch.a"
)

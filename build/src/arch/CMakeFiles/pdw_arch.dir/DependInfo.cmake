
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cell.cpp" "src/arch/CMakeFiles/pdw_arch.dir/cell.cpp.o" "gcc" "src/arch/CMakeFiles/pdw_arch.dir/cell.cpp.o.d"
  "/root/repo/src/arch/chip.cpp" "src/arch/CMakeFiles/pdw_arch.dir/chip.cpp.o" "gcc" "src/arch/CMakeFiles/pdw_arch.dir/chip.cpp.o.d"
  "/root/repo/src/arch/path.cpp" "src/arch/CMakeFiles/pdw_arch.dir/path.cpp.o" "gcc" "src/arch/CMakeFiles/pdw_arch.dir/path.cpp.o.d"
  "/root/repo/src/arch/router.cpp" "src/arch/CMakeFiles/pdw_arch.dir/router.cpp.o" "gcc" "src/arch/CMakeFiles/pdw_arch.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

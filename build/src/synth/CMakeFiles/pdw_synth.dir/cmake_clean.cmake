file(REMOVE_RECURSE
  "CMakeFiles/pdw_synth.dir/binder.cpp.o"
  "CMakeFiles/pdw_synth.dir/binder.cpp.o.d"
  "CMakeFiles/pdw_synth.dir/placer.cpp.o"
  "CMakeFiles/pdw_synth.dir/placer.cpp.o.d"
  "CMakeFiles/pdw_synth.dir/synthesizer.cpp.o"
  "CMakeFiles/pdw_synth.dir/synthesizer.cpp.o.d"
  "libpdw_synth.a"
  "libpdw_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

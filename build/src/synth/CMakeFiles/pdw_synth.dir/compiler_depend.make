# Empty compiler generated dependencies file for pdw_synth.
# This may be replaced when dependencies are built.

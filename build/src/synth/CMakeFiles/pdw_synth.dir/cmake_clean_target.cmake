file(REMOVE_RECURSE
  "libpdw_synth.a"
)

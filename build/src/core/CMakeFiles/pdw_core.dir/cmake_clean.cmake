file(REMOVE_RECURSE
  "CMakeFiles/pdw_core.dir/pathdriver_wash.cpp.o"
  "CMakeFiles/pdw_core.dir/pathdriver_wash.cpp.o.d"
  "CMakeFiles/pdw_core.dir/schedule_ilp.cpp.o"
  "CMakeFiles/pdw_core.dir/schedule_ilp.cpp.o.d"
  "CMakeFiles/pdw_core.dir/wash_path_ilp.cpp.o"
  "CMakeFiles/pdw_core.dir/wash_path_ilp.cpp.o.d"
  "libpdw_core.a"
  "libpdw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/pathdriver_wash.cpp" "src/core/CMakeFiles/pdw_core.dir/pathdriver_wash.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/pathdriver_wash.cpp.o.d"
  "/root/repo/src/core/schedule_ilp.cpp" "src/core/CMakeFiles/pdw_core.dir/schedule_ilp.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/schedule_ilp.cpp.o.d"
  "/root/repo/src/core/wash_path_ilp.cpp" "src/core/CMakeFiles/pdw_core.dir/wash_path_ilp.cpp.o" "gcc" "src/core/CMakeFiles/pdw_core.dir/wash_path_ilp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wash/CMakeFiles/pdw_wash.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/pdw_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/assay/CMakeFiles/pdw_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

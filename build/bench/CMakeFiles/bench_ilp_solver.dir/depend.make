# Empty dependencies file for bench_ilp_solver.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ilp_solver.dir/bench_ilp_solver.cpp.o"
  "CMakeFiles/bench_ilp_solver.dir/bench_ilp_solver.cpp.o.d"
  "bench_ilp_solver"
  "bench_ilp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ilp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

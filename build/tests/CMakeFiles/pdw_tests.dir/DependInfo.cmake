
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch.cpp" "tests/CMakeFiles/pdw_tests.dir/test_arch.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_arch.cpp.o.d"
  "/root/repo/tests/test_assay.cpp" "tests/CMakeFiles/pdw_tests.dir/test_assay.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_assay.cpp.o.d"
  "/root/repo/tests/test_end_to_end.cpp" "tests/CMakeFiles/pdw_tests.dir/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_end_to_end.cpp.o.d"
  "/root/repo/tests/test_gantt_metrics.cpp" "tests/CMakeFiles/pdw_tests.dir/test_gantt_metrics.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_gantt_metrics.cpp.o.d"
  "/root/repo/tests/test_ilp_mip.cpp" "tests/CMakeFiles/pdw_tests.dir/test_ilp_mip.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_ilp_mip.cpp.o.d"
  "/root/repo/tests/test_ilp_model_presolve.cpp" "tests/CMakeFiles/pdw_tests.dir/test_ilp_model_presolve.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_ilp_model_presolve.cpp.o.d"
  "/root/repo/tests/test_ilp_simplex.cpp" "tests/CMakeFiles/pdw_tests.dir/test_ilp_simplex.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_ilp_simplex.cpp.o.d"
  "/root/repo/tests/test_ilp_warm_start.cpp" "tests/CMakeFiles/pdw_tests.dir/test_ilp_warm_start.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_ilp_warm_start.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/pdw_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_rescheduler.cpp" "tests/CMakeFiles/pdw_tests.dir/test_rescheduler.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_rescheduler.cpp.o.d"
  "/root/repo/tests/test_schedule_ilp.cpp" "tests/CMakeFiles/pdw_tests.dir/test_schedule_ilp.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_schedule_ilp.cpp.o.d"
  "/root/repo/tests/test_schedule_model.cpp" "tests/CMakeFiles/pdw_tests.dir/test_schedule_model.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_schedule_model.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/pdw_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_synth.cpp" "tests/CMakeFiles/pdw_tests.dir/test_synth.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_synth.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/pdw_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_wash_analysis.cpp" "tests/CMakeFiles/pdw_tests.dir/test_wash_analysis.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_wash_analysis.cpp.o.d"
  "/root/repo/tests/test_wash_path_routing.cpp" "tests/CMakeFiles/pdw_tests.dir/test_wash_path_routing.cpp.o" "gcc" "tests/CMakeFiles/pdw_tests.dir/test_wash_path_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/pdw_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wash/CMakeFiles/pdw_wash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pdw_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/assay/CMakeFiles/pdw_assay.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdw_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/pdw_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for pdw_tests.
# This may be replaced when dependencies are built.

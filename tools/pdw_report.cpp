// pdw_report — regression/improvement comparator over the run-record store.
//
//   pdw_report --store runs.jsonl --list
//   pdw_report --store runs.jsonl --label current --against-label baseline
//   pdw_report --store runs.jsonl --label current --against BENCH_ilp.json
//             [--max-regression 10%] [--metrics wall_seconds,nodes]
//             [--min-wall 0.05]
//
// Loads the `pdw-run-1` store (obs/runs.h), picks the latest record of
// `--label`, and diffs it against either another label's latest record or a
// frozen `pdw-bench-1` document (bench_ilp_solver --json-out, e.g. the
// committed BENCH_ilp.json baseline; the schema is sniffed). Rows are
// aligned by name; each configured metric (all lower-is-better) regresses
// when it grows more than --max-regression percent over the baseline, with
// a wall-clock noise floor (--min-wall) under which timing jitter never
// counts. Prints one table row per (benchmark, metric) pair and a summary.
//
// Exit codes, for scripting: 0 = no regression, 1 = at least one row
// regressed past the threshold, 2 = usage / I/O / missing-label error.
// scripts/tier1.sh gates the quick solver bench on exit 0/1.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/runs.h"

namespace {

using pdw::obs::DiffThresholds;
using pdw::obs::RowDiff;
using pdw::obs::RunDiff;
using pdw::obs::RunRecord;
using pdw::obs::RunStore;

int usage() {
  std::fprintf(
      stderr,
      "usage: pdw_report --store FILE.jsonl (--list |\n"
      "         --label NAME (--against-label NAME | --against BENCH.json)\n"
      "         [--max-regression PCT[%%]] [--metrics a,b,c] "
      "[--min-wall S])\n"
      "exit codes: 0 = no regression, 1 = regression, 2 = error\n");
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Load `--against FILE`: a pdw-run-1 line/record or a pdw-bench-1
/// document, sniffed by schema tag.
std::optional<RunRecord> loadAgainstFile(const std::string& path) {
  const std::string text = slurp(path);
  if (text.empty()) {
    std::fprintf(stderr, "pdw_report: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  const auto doc = pdw::obs::json::parse(text);
  if (doc) {
    if (auto rec = pdw::obs::runRecordFromBenchDoc(*doc)) return rec;
    if (auto rec = RunRecord::fromJson(*doc)) return rec;
  }
  // Not a single JSON document: maybe a pdw-run-1 store — take the last
  // parseable record.
  const std::vector<RunRecord> records = RunStore(path).loadAll();
  if (!records.empty()) return records.back();
  std::fprintf(stderr,
               "pdw_report: %s is neither pdw-bench-1 nor pdw-run-1\n",
               path.c_str());
  return std::nullopt;
}

std::vector<std::string> splitCommas(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

void listStore(const RunStore& store) {
  const std::vector<RunRecord> records = store.loadAll();
  std::printf("%-20s %-18s %-20s %-10s %-6s %s\n", "label", "bench",
              "timestamp", "git", "rows", "engine");
  for (const RunRecord& r : records)
    std::printf("%-20s %-18s %-20s %-10s %-6zu %s\n", r.label.c_str(),
                r.bench.c_str(), r.timestamp.c_str(), r.git_sha.c_str(),
                r.rows.size(), r.engine.c_str());
  std::printf("%zu record(s) in %s\n", records.size(), store.path().c_str());
}

int report(const RunRecord& base, const RunRecord& current,
           const DiffThresholds& thresholds) {
  std::printf("pdw_report: %s (%s, %s) vs baseline %s (%s)\n",
              current.label.c_str(), current.git_sha.c_str(),
              current.timestamp.c_str(),
              base.label.empty() ? "<baseline>" : base.label.c_str(),
              base.bench.c_str());
  if (!current.config.empty())
    std::printf("  config: %s\n", current.config.c_str());

  const RunDiff diff = pdw::obs::diffRuns(base, current, thresholds);
  std::printf("%-28s %-20s %14s %14s %9s\n", "benchmark", "metric",
              "baseline", "current", "delta");
  for (const RowDiff& row : diff.rows) {
    char pct[32];
    if (std::isfinite(row.pct))
      std::snprintf(pct, sizeof(pct), "%+.1f%%", row.pct);
    else
      std::snprintf(pct, sizeof(pct), "+inf");
    std::printf("%-28s %-20s %14.4g %14.4g %9s%s\n", row.name.c_str(),
                row.metric.c_str(), row.base, row.current, pct,
                row.regressed ? "  << REGRESSED" : "");
  }
  std::printf(
      "pdw_report: %d common row(s), %zu compared pair(s), %d "
      "regression(s) (threshold +%.1f%%)\n",
      diff.common_rows, diff.rows.size(), diff.regressions,
      thresholds.max_regression_pct);
  if (diff.common_rows == 0) {
    std::fprintf(stderr,
                 "pdw_report: baseline and current share no row names\n");
    return 2;
  }
  return diff.anyRegression() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path, label, against_label, against_file;
  std::string metrics_csv, max_regression, min_wall;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      if (arg.compare(0, len, flag) != 0) return nullptr;
      if (arg.size() > len && arg[len] == '=') return arg.c_str() + len + 1;
      if (arg.size() == len && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--store")) {
      store_path = v;
    } else if (const char* v = value("--label")) {
      label = v;
    } else if (const char* v = value("--against-label")) {
      against_label = v;
    } else if (const char* v = value("--against")) {
      against_file = v;
    } else if (const char* v = value("--max-regression")) {
      max_regression = v;
    } else if (const char* v = value("--metrics")) {
      metrics_csv = v;
    } else if (const char* v = value("--min-wall")) {
      min_wall = v;
    } else if (arg == "--list") {
      list = true;
    } else {
      return usage();
    }
  }
  if (store_path.empty()) return usage();

  const RunStore store(store_path);
  if (list) {
    listStore(store);
    return 0;
  }
  if (label.empty() || (against_label.empty() && against_file.empty()))
    return usage();

  DiffThresholds thresholds;
  if (!max_regression.empty()) {
    // "10", "10%", "12.5%" all accepted.
    thresholds.max_regression_pct = std::atof(max_regression.c_str());
    if (thresholds.max_regression_pct <= 0.0) {
      std::fprintf(stderr, "pdw_report: bad --max-regression '%s'\n",
                   max_regression.c_str());
      return 2;
    }
  }
  if (!metrics_csv.empty()) thresholds.metrics = splitCommas(metrics_csv);
  if (!min_wall.empty()) thresholds.min_wall_seconds = std::atof(min_wall.c_str());

  const std::optional<RunRecord> current = store.findLabel(label);
  if (!current) {
    std::fprintf(stderr, "pdw_report: label '%s' not found in %s\n",
                 label.c_str(), store_path.c_str());
    return 2;
  }

  std::optional<RunRecord> base;
  if (!against_label.empty()) {
    base = store.findLabel(against_label);
    if (!base) {
      std::fprintf(stderr, "pdw_report: label '%s' not found in %s\n",
                   against_label.c_str(), store_path.c_str());
      return 2;
    }
  } else {
    base = loadAgainstFile(against_file);
    if (!base) return 2;
  }

  return report(*base, *current, thresholds);
}

// obs_check — validates pdw_cli's observability exports (scripts/tier1.sh).
//
//   obs_check --trace t.json --metrics m.json [--expect-workers N]
//   obs_check --bench b.json [--expect-warm-hits]
//
// Trace checks: parses as Chrome trace_event JSON (object form), every
// event carries ph/ts/pid/tid, begin/end counts balance with proper nesting
// per thread, the four pipeline stage spans and at least one per-operation
// wash_op span are present, and (with --expect-workers) N distinct
// pdw-worker threads are registered. Metrics checks: schema tag plus the
// core solver/pipeline keys with sane values. Bench checks: a `pdw-bench-1`
// document from `bench_ilp_solver --json-out` — schema tag, per-benchmark
// records with non-negative solver readings, totals consistent with the
// records, and (with --expect-warm-hits) a strictly positive warm-hit rate.
// Exits non-zero with one line per failure.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using pdw::obs::json::Value;

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "obs_check: FAIL: %s\n", message.c_str());
  ++failures;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void checkTrace(const std::string& path, int expect_workers) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("trace file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("trace is not a JSON object");
  const Value* events = doc->find("traceEvents");
  if (!events || !events->isArray())
    return fail("trace has no traceEvents array");

  // Per-tid span stack: every E must close the most recent B on its thread.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, int> begins, ends;
  std::set<std::string> span_names;
  std::set<std::string> worker_names;
  int wash_ops = 0;
  for (const Value& e : events->array) {
    const Value* ph = e.find("ph");
    const Value* tid = e.find("tid");
    if (!ph || !ph->isString() || !tid || !tid->isNumber()) {
      fail("event missing ph or tid");
      continue;
    }
    const int t = static_cast<int>(tid->number);
    const Value* name = e.find("name");
    const std::string n = name && name->isString() ? name->string : "";
    if (ph->string == "M") {
      if (n == "thread_name") {
        const Value* args = e.find("args");
        const Value* tn = args ? args->find("name") : nullptr;
        if (tn && tn->isString() &&
            tn->string.rfind("pdw-worker-", 0) == 0)
          worker_names.insert(tn->string);
      }
      continue;
    }
    if (!e.find("ts") || !e.find("ts")->isNumber())
      fail("event missing numeric ts");
    if (!e.find("pid") || !e.find("pid")->isNumber())
      fail("event missing numeric pid");
    if (ph->string == "B") {
      ++begins[t];
      stacks[t].push_back(n);
      span_names.insert(n);
      if (n.rfind("wash_op#", 0) == 0) ++wash_ops;
    } else if (ph->string == "E") {
      ++ends[t];
      if (stacks[t].empty()) {
        fail("unbalanced E on tid " + std::to_string(t));
      } else {
        if (!n.empty() && stacks[t].back() != n)
          fail("E '" + n + "' does not close B '" + stacks[t].back() +
               "' on tid " + std::to_string(t));
        stacks[t].pop_back();
      }
    }
  }
  for (const auto& [t, stack] : stacks)
    if (!stack.empty())
      fail("tid " + std::to_string(t) + " left " +
           std::to_string(stack.size()) + " span(s) open ('" + stack.back() +
           "')");
  for (const auto& [t, b] : begins)
    if (b != ends[t])
      fail("tid " + std::to_string(t) + " has " + std::to_string(b) +
           " begins but " + std::to_string(ends[t]) + " ends");

  for (const char* stage : {"run", "necessity_analysis", "clustering",
                            "routing", "scheduling"})
    if (!span_names.count(stage))
      fail(std::string("missing pipeline stage span '") + stage + "'");
  if (wash_ops < 1) fail("no wash_op spans (expected one per routed wash)");
  if (static_cast<int>(worker_names.size()) < expect_workers)
    fail("expected >= " + std::to_string(expect_workers) +
         " pdw-worker threads, found " +
         std::to_string(worker_names.size()));
}

void checkMetrics(const std::string& path) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("metrics file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("metrics is not a JSON object");
  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-metrics-1")
    fail("metrics schema tag is not 'pdw-metrics-1'");
  const Value* metrics = doc->find("metrics");
  if (!metrics || !metrics->isObject())
    return fail("metrics has no 'metrics' object");

  for (const char* key :
       {"pdw.necessity.targets", "pdw.cluster.operations",
        "pdw.path_ilp.solves", "pdw.route_cache.misses", "ilp.bb.solves",
        "ilp.bb.nodes", "ilp.simplex.calls", "ilp.simplex.iterations",
        "ilp.solve_seconds", "pool.tasks_executed"}) {
    const Value* entry = metrics->find(key);
    if (!entry || !entry->isObject()) {
      fail(std::string("missing metric '") + key + "'");
      continue;
    }
    const Value* type = entry->find("type");
    if (!type || !type->isString())
      fail(std::string("metric '") + key + "' has no type");
    const Value* reading = entry->find(
        type && type->string == "histogram" ? "count" : "value");
    if (!reading || !reading->isNumber() || reading->number < 0)
      fail(std::string("metric '") + key +
           "' has no non-negative reading");
  }
}

void checkBench(const std::string& path, bool expect_warm_hits) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("bench file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("bench is not a JSON object");
  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-bench-1")
    fail("bench schema tag is not 'pdw-bench-1'");
  const Value* benchmarks = doc->find("benchmarks");
  if (!benchmarks || !benchmarks->isArray() || benchmarks->array.empty())
    return fail("bench has no non-empty 'benchmarks' array");

  const std::vector<const char*> numeric_keys = {
      "wall_seconds", "mip_solves",  "nodes",    "simplex_iterations",
      "warm_hits",    "warm_misses", "dual_pivots", "rc_fixed"};
  std::map<std::string, double> sums;
  for (const Value& b : benchmarks->array) {
    const Value* name = b.find("name");
    const std::string n =
        name && name->isString() ? name->string : "<unnamed>";
    if (n == "<unnamed>") fail("benchmark record without a name");
    for (const char* key : numeric_keys) {
      const Value* v = b.find(key);
      if (!v || !v->isNumber() || v->number < 0) {
        fail("benchmark '" + n + "' has no non-negative '" + key + "'");
        continue;
      }
      sums[key] += v->number;
    }
  }

  const Value* totals = doc->find("totals");
  if (!totals || !totals->isObject())
    return fail("bench has no 'totals' object");
  for (const char* key : numeric_keys) {
    const Value* v = totals->find(key);
    if (!v || !v->isNumber()) {
      fail(std::string("totals has no numeric '") + key + "'");
      continue;
    }
    // The solver counters are exact integers; wall_seconds is a float sum
    // of values serialized at ~6 significant digits, so its tolerance must
    // absorb the per-record rounding.
    const double tol = std::strcmp(key, "wall_seconds") == 0
                           ? 0.01 + 1e-3 * std::abs(v->number)
                           : 0.5;
    if (std::abs(v->number - sums[key]) > tol)
      fail(std::string("totals['") + key + "'] does not equal the sum of " +
           "the per-benchmark records");
  }
  if (expect_warm_hits) {
    const Value* hits = totals->find("warm_hits");
    if (!hits || !hits->isNumber() || hits->number <= 0)
      fail("expected totals.warm_hits > 0 (warm dual path never taken)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, bench_path;
  bool expect_warm_hits = false;
  int expect_workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v) trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v) metrics_path = v;
    } else if (arg == "--expect-workers") {
      const char* v = next();
      if (v) expect_workers = std::atoi(v);
    } else if (arg == "--bench") {
      const char* v = next();
      if (v) bench_path = v;
    } else if (arg == "--expect-warm-hits") {
      expect_warm_hits = true;
    } else {
      std::fprintf(stderr,
                   "usage: obs_check [--trace FILE] [--metrics FILE] "
                   "[--expect-workers N] [--bench FILE] "
                   "[--expect-warm-hits]\n");
      return 2;
    }
  }
  if (trace_path.empty() && metrics_path.empty() && bench_path.empty()) {
    std::fprintf(stderr, "obs_check: nothing to check\n");
    return 2;
  }
  if (!trace_path.empty()) checkTrace(trace_path, expect_workers);
  if (!metrics_path.empty()) checkMetrics(metrics_path);
  if (!bench_path.empty()) checkBench(bench_path, expect_warm_hits);
  if (failures == 0) {
    std::fprintf(stderr, "obs_check: OK\n");
    return 0;
  }
  return 1;
}

// obs_check — validates pdw_cli's observability exports (scripts/tier1.sh).
//
//   obs_check --trace t.json --metrics m.json [--expect-workers N]
//   obs_check --bench b.json [--expect-warm-hits] [--expect-engine NAME]
//             [--baseline BENCH.json]
//
// Trace checks: parses as Chrome trace_event JSON (object form), every
// event carries ph/ts/pid/tid, begin/end counts balance with proper nesting
// per thread, the four pipeline stage spans and at least one per-operation
// wash_op span are present, and (with --expect-workers) N distinct
// pdw-worker threads are registered. Metrics checks: schema tag plus the
// core solver/pipeline keys with sane values. Bench checks: a `pdw-bench-1`
// document from `bench_ilp_solver --json-out` — schema tag, per-benchmark
// records with non-negative solver readings, totals consistent with the
// records, and (with --expect-warm-hits) a strictly positive warm-hit rate.
// --expect-engine requires the document's top-level `engine` label to match.
// --baseline compares against a reference pdw-bench-1 document (rows matched
// by name) and fails when the totals over the common rows regress: the
// current run must be no slower in wall time and spend no more simplex
// iterations than the baseline. Exits non-zero with one line per failure.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using pdw::obs::json::Value;

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "obs_check: FAIL: %s\n", message.c_str());
  ++failures;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void checkTrace(const std::string& path, int expect_workers) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("trace file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("trace is not a JSON object");
  const Value* events = doc->find("traceEvents");
  if (!events || !events->isArray())
    return fail("trace has no traceEvents array");

  // Per-tid span stack: every E must close the most recent B on its thread.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, int> begins, ends;
  std::set<std::string> span_names;
  std::set<std::string> worker_names;
  int wash_ops = 0;
  for (const Value& e : events->array) {
    const Value* ph = e.find("ph");
    const Value* tid = e.find("tid");
    if (!ph || !ph->isString() || !tid || !tid->isNumber()) {
      fail("event missing ph or tid");
      continue;
    }
    const int t = static_cast<int>(tid->number);
    const Value* name = e.find("name");
    const std::string n = name && name->isString() ? name->string : "";
    if (ph->string == "M") {
      if (n == "thread_name") {
        const Value* args = e.find("args");
        const Value* tn = args ? args->find("name") : nullptr;
        if (tn && tn->isString() &&
            tn->string.rfind("pdw-worker-", 0) == 0)
          worker_names.insert(tn->string);
      }
      continue;
    }
    if (!e.find("ts") || !e.find("ts")->isNumber())
      fail("event missing numeric ts");
    if (!e.find("pid") || !e.find("pid")->isNumber())
      fail("event missing numeric pid");
    if (ph->string == "B") {
      ++begins[t];
      stacks[t].push_back(n);
      span_names.insert(n);
      if (n.rfind("wash_op#", 0) == 0) ++wash_ops;
    } else if (ph->string == "E") {
      ++ends[t];
      if (stacks[t].empty()) {
        fail("unbalanced E on tid " + std::to_string(t));
      } else {
        if (!n.empty() && stacks[t].back() != n)
          fail("E '" + n + "' does not close B '" + stacks[t].back() +
               "' on tid " + std::to_string(t));
        stacks[t].pop_back();
      }
    }
  }
  for (const auto& [t, stack] : stacks)
    if (!stack.empty())
      fail("tid " + std::to_string(t) + " left " +
           std::to_string(stack.size()) + " span(s) open ('" + stack.back() +
           "')");
  for (const auto& [t, b] : begins)
    if (b != ends[t])
      fail("tid " + std::to_string(t) + " has " + std::to_string(b) +
           " begins but " + std::to_string(ends[t]) + " ends");

  for (const char* stage : {"run", "necessity_analysis", "clustering",
                            "routing", "scheduling"})
    if (!span_names.count(stage))
      fail(std::string("missing pipeline stage span '") + stage + "'");
  if (wash_ops < 1) fail("no wash_op spans (expected one per routed wash)");
  if (static_cast<int>(worker_names.size()) < expect_workers)
    fail("expected >= " + std::to_string(expect_workers) +
         " pdw-worker threads, found " +
         std::to_string(worker_names.size()));
}

void checkMetrics(const std::string& path) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("metrics file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("metrics is not a JSON object");
  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-metrics-1")
    fail("metrics schema tag is not 'pdw-metrics-1'");
  const Value* metrics = doc->find("metrics");
  if (!metrics || !metrics->isObject())
    return fail("metrics has no 'metrics' object");

  for (const char* key :
       {"pdw.necessity.targets", "pdw.cluster.operations",
        "pdw.path_ilp.solves", "pdw.route_cache.misses", "ilp.bb.solves",
        "ilp.bb.nodes", "ilp.simplex.calls", "ilp.simplex.iterations",
        "ilp.solve_seconds", "pool.tasks_executed"}) {
    const Value* entry = metrics->find(key);
    if (!entry || !entry->isObject()) {
      fail(std::string("missing metric '") + key + "'");
      continue;
    }
    const Value* type = entry->find("type");
    if (!type || !type->isString())
      fail(std::string("metric '") + key + "' has no type");
    const Value* reading = entry->find(
        type && type->string == "histogram" ? "count" : "value");
    if (!reading || !reading->isNumber() || reading->number < 0)
      fail(std::string("metric '") + key +
           "' has no non-negative reading");
  }
}

struct BenchRow {
  double wall_seconds = 0.0;
  double simplex_iterations = 0.0;
};

/// name -> (wall, iterations) for every named record in a pdw-bench-1 doc.
std::map<std::string, BenchRow> benchRows(const Value& doc) {
  std::map<std::string, BenchRow> rows;
  const Value* benchmarks = doc.find("benchmarks");
  if (!benchmarks || !benchmarks->isArray()) return rows;
  for (const Value& b : benchmarks->array) {
    const Value* name = b.find("name");
    const Value* wall = b.find("wall_seconds");
    const Value* iters = b.find("simplex_iterations");
    if (!name || !name->isString() || !wall || !wall->isNumber() || !iters ||
        !iters->isNumber())
      continue;
    rows[name->string] = {wall->number, iters->number};
  }
  return rows;
}

/// Regression gate against a reference run: rows are matched by name and the
/// totals over the common rows must not regress in either wall time or
/// simplex iterations. Per-row ratios are printed for the log regardless.
void checkBenchBaseline(const Value& doc, const std::string& baseline_path) {
  const std::string text = slurp(baseline_path);
  if (text.empty())
    return fail("baseline file empty or unreadable: " + baseline_path);
  const auto base_doc = pdw::obs::json::parse(text);
  if (!base_doc || !base_doc->isObject())
    return fail("baseline is not a JSON object");
  const Value* schema = base_doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-bench-1")
    return fail("baseline schema tag is not 'pdw-bench-1'");

  const std::map<std::string, BenchRow> current = benchRows(doc);
  const std::map<std::string, BenchRow> baseline = benchRows(*base_doc);
  BenchRow cur_total, base_total;
  int common = 0;
  for (const auto& [name, cur] : current) {
    const auto it = baseline.find(name);
    if (it == baseline.end()) continue;
    ++common;
    cur_total.wall_seconds += cur.wall_seconds;
    cur_total.simplex_iterations += cur.simplex_iterations;
    base_total.wall_seconds += it->second.wall_seconds;
    base_total.simplex_iterations += it->second.simplex_iterations;
    std::fprintf(stderr,
                 "obs_check: baseline %-24s wall %8.3fs -> %8.3fs  "
                 "iters %10.0f -> %10.0f\n",
                 name.c_str(), it->second.wall_seconds, cur.wall_seconds,
                 it->second.simplex_iterations, cur.simplex_iterations);
  }
  if (common == 0)
    return fail("baseline shares no benchmark names with the current run");
  if (cur_total.wall_seconds > base_total.wall_seconds)
    fail("wall time regressed vs baseline over " + std::to_string(common) +
         " common rows (" + std::to_string(cur_total.wall_seconds) + "s > " +
         std::to_string(base_total.wall_seconds) + "s)");
  if (cur_total.simplex_iterations > base_total.simplex_iterations)
    fail("simplex iterations regressed vs baseline over " +
         std::to_string(common) + " common rows (" +
         std::to_string(cur_total.simplex_iterations) + " > " +
         std::to_string(base_total.simplex_iterations) + ")");
}

void checkBench(const std::string& path, bool expect_warm_hits,
                const std::string& expect_engine,
                const std::string& baseline_path) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("bench file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("bench is not a JSON object");
  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-bench-1")
    fail("bench schema tag is not 'pdw-bench-1'");
  if (!expect_engine.empty()) {
    const Value* engine = doc->find("engine");
    if (!engine || !engine->isString())
      fail("bench has no string 'engine' label (expected '" + expect_engine +
           "')");
    else if (engine->string != expect_engine)
      fail("bench engine is '" + engine->string + "', expected '" +
           expect_engine + "'");
  }
  const Value* benchmarks = doc->find("benchmarks");
  if (!benchmarks || !benchmarks->isArray() || benchmarks->array.empty())
    return fail("bench has no non-empty 'benchmarks' array");

  const std::vector<const char*> numeric_keys = {
      "wall_seconds", "mip_solves",  "nodes",    "simplex_iterations",
      "warm_hits",    "warm_misses", "dual_pivots", "rc_fixed"};
  std::map<std::string, double> sums;
  for (const Value& b : benchmarks->array) {
    const Value* name = b.find("name");
    const std::string n =
        name && name->isString() ? name->string : "<unnamed>";
    if (n == "<unnamed>") fail("benchmark record without a name");
    for (const char* key : numeric_keys) {
      const Value* v = b.find(key);
      if (!v || !v->isNumber() || v->number < 0) {
        fail("benchmark '" + n + "' has no non-negative '" + key + "'");
        continue;
      }
      sums[key] += v->number;
    }
  }

  const Value* totals = doc->find("totals");
  if (!totals || !totals->isObject())
    return fail("bench has no 'totals' object");
  for (const char* key : numeric_keys) {
    const Value* v = totals->find(key);
    if (!v || !v->isNumber()) {
      fail(std::string("totals has no numeric '") + key + "'");
      continue;
    }
    // The solver counters are exact integers; wall_seconds is a float sum
    // of values serialized at ~6 significant digits, so its tolerance must
    // absorb the per-record rounding.
    const double tol = std::strcmp(key, "wall_seconds") == 0
                           ? 0.01 + 1e-3 * std::abs(v->number)
                           : 0.5;
    if (std::abs(v->number - sums[key]) > tol)
      fail(std::string("totals['") + key + "'] does not equal the sum of " +
           "the per-benchmark records");
  }
  if (expect_warm_hits) {
    const Value* hits = totals->find("warm_hits");
    if (!hits || !hits->isNumber() || hits->number <= 0)
      fail("expected totals.warm_hits > 0 (warm dual path never taken)");
  }
  if (!baseline_path.empty()) checkBenchBaseline(*doc, baseline_path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, bench_path;
  std::string expect_engine, baseline_path;
  bool expect_warm_hits = false;
  int expect_workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v) trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v) metrics_path = v;
    } else if (arg == "--expect-workers") {
      const char* v = next();
      if (v) expect_workers = std::atoi(v);
    } else if (arg == "--bench") {
      const char* v = next();
      if (v) bench_path = v;
    } else if (arg == "--expect-warm-hits") {
      expect_warm_hits = true;
    } else if (arg == "--expect-engine") {
      const char* v = next();
      if (v) expect_engine = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v) baseline_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: obs_check [--trace FILE] [--metrics FILE] "
                   "[--expect-workers N] [--bench FILE] "
                   "[--expect-warm-hits] [--expect-engine NAME] "
                   "[--baseline BENCH.json]\n");
      return 2;
    }
  }
  if (trace_path.empty() && metrics_path.empty() && bench_path.empty()) {
    std::fprintf(stderr, "obs_check: nothing to check\n");
    return 2;
  }
  if (!trace_path.empty()) checkTrace(trace_path, expect_workers);
  if (!metrics_path.empty()) checkMetrics(metrics_path);
  if (!bench_path.empty())
    checkBench(bench_path, expect_warm_hits, expect_engine, baseline_path);
  if (failures == 0) {
    std::fprintf(stderr, "obs_check: OK\n");
    return 0;
  }
  return 1;
}

// obs_check — validates pdw_cli's observability exports (scripts/tier1.sh).
//
//   obs_check --trace t.json --metrics m.json [--expect-workers N]
//   obs_check --bench b.json [--expect-warm-hits] [--expect-engine NAME]
//   obs_check --flight f.jsonl [--metrics m.json]
//   obs_check --pdwd scrape.json [--expect-solves N] [--expect-warm-solves]
//   obs_check --resolve m.json
//
// Resolve checks: the incremental `pdw.resolve.*` counters (raw export or
// scrape line). Enforces the partition invariants from obs/metric_names.h —
// cells_total == frontier + reused, targets_total == recomputed + reused,
// full_fallbacks/errors <= requests, and the latency histogram count equals
// the successful resolves.
//
// Pdwd checks: the daemon's `pdwd.*` request-accounting counters, read from
// a raw pdw-metrics-1 export or straight from a `pdw-resp-1` metrics-scrape
// response line. Validates the outcome-partition invariant (solve_ok +
// budget_hits + deadline_expired + rejected_queue_full <= requests), that
// plan-cache hits never exceed completed solves, and optionally an exact
// completed-solve count / a warm-serve requirement.
//
// Flight checks: a `pdw-flight-1` JSONL stream (obs/flight.h) — every line
// parses, solve headers carry lane/status/wall/counts/dropped/events, each
// header is followed by exactly its `events` event lines with known kinds
// and increasing seq, and sum(counts) == dropped + events per block. When
// --metrics is also given, the stream is reconciled against the registry
// export: canonical-lane node_open == ilp.bb.nodes, diver node_open ==
// ilp.bb.diver_nodes, canonical warm_miss == ilp.simplex.warm_misses,
// canonical cut_added == ilp.cuts.added (the root separation loop records
// one event per materialized cut into the canonical recorder), and solve
// headers <= ilp.bb.solves (pure-LP solves carry no recorder). Exact only
// when the producing process dumped every solve (--flight-out / dump_all)
// — which is how tier1.sh drives it.
//
// Trace checks: parses as Chrome trace_event JSON (object form), every
// event carries ph/ts/pid/tid, begin/end counts balance with proper nesting
// per thread, the four pipeline stage spans and at least one per-operation
// wash_op span are present, and (with --expect-workers) N distinct
// pdw-worker threads are registered. Metrics checks: schema tag plus the
// core solver/pipeline keys with sane values. Bench checks: a `pdw-bench-1`
// document from `bench_ilp_solver --json-out` — schema tag, per-benchmark
// records with non-negative solver readings, totals consistent with the
// records, and (with --expect-warm-hits) a strictly positive warm-hit rate.
// --expect-engine requires the document's top-level `engine` label to match.
// Baseline comparisons live in tools/pdw_report (per-row diffs against the
// run-record store or a frozen pdw-bench-1 document); the former
// `--baseline` totals gate has been retired. Exits non-zero with one line
// per failure.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using pdw::obs::json::Value;

int failures = 0;

void fail(const std::string& message) {
  std::fprintf(stderr, "obs_check: FAIL: %s\n", message.c_str());
  ++failures;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void checkTrace(const std::string& path, int expect_workers) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("trace file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("trace is not a JSON object");
  const Value* events = doc->find("traceEvents");
  if (!events || !events->isArray())
    return fail("trace has no traceEvents array");

  // Per-tid span stack: every E must close the most recent B on its thread.
  std::map<int, std::vector<std::string>> stacks;
  std::map<int, int> begins, ends;
  std::set<std::string> span_names;
  std::set<std::string> worker_names;
  int wash_ops = 0;
  for (const Value& e : events->array) {
    const Value* ph = e.find("ph");
    const Value* tid = e.find("tid");
    if (!ph || !ph->isString() || !tid || !tid->isNumber()) {
      fail("event missing ph or tid");
      continue;
    }
    const int t = static_cast<int>(tid->number);
    const Value* name = e.find("name");
    const std::string n = name && name->isString() ? name->string : "";
    if (ph->string == "M") {
      if (n == "thread_name") {
        const Value* args = e.find("args");
        const Value* tn = args ? args->find("name") : nullptr;
        if (tn && tn->isString() &&
            tn->string.rfind("pdw-worker-", 0) == 0)
          worker_names.insert(tn->string);
      }
      continue;
    }
    if (!e.find("ts") || !e.find("ts")->isNumber())
      fail("event missing numeric ts");
    if (!e.find("pid") || !e.find("pid")->isNumber())
      fail("event missing numeric pid");
    if (ph->string == "B") {
      ++begins[t];
      stacks[t].push_back(n);
      span_names.insert(n);
      if (n.rfind("wash_op#", 0) == 0) ++wash_ops;
    } else if (ph->string == "E") {
      ++ends[t];
      if (stacks[t].empty()) {
        fail("unbalanced E on tid " + std::to_string(t));
      } else {
        if (!n.empty() && stacks[t].back() != n)
          fail("E '" + n + "' does not close B '" + stacks[t].back() +
               "' on tid " + std::to_string(t));
        stacks[t].pop_back();
      }
    }
  }
  for (const auto& [t, stack] : stacks)
    if (!stack.empty())
      fail("tid " + std::to_string(t) + " left " +
           std::to_string(stack.size()) + " span(s) open ('" + stack.back() +
           "')");
  for (const auto& [t, b] : begins)
    if (b != ends[t])
      fail("tid " + std::to_string(t) + " has " + std::to_string(b) +
           " begins but " + std::to_string(ends[t]) + " ends");

  for (const char* stage : {"run", "necessity_analysis", "clustering",
                            "routing", "scheduling"})
    if (!span_names.count(stage))
      fail(std::string("missing pipeline stage span '") + stage + "'");
  if (wash_ops < 1) fail("no wash_op spans (expected one per routed wash)");
  if (static_cast<int>(worker_names.size()) < expect_workers)
    fail("expected >= " + std::to_string(expect_workers) +
         " pdw-worker threads, found " +
         std::to_string(worker_names.size()));
}

void checkMetrics(const std::string& path, bool expect_pool) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("metrics file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("metrics is not a JSON object");
  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-metrics-1")
    fail("metrics schema tag is not 'pdw-metrics-1'");
  const Value* metrics = doc->find("metrics");
  if (!metrics || !metrics->isObject())
    return fail("metrics has no 'metrics' object");

  std::vector<const char*> required = {
      "pdw.necessity.targets", "pdw.cluster.operations",
      "pdw.path_ilp.solves",   "pdw.route_cache.misses",
      "ilp.bb.solves",         "ilp.bb.nodes",
      "ilp.simplex.calls",     "ilp.simplex.iterations",
      "ilp.solve_seconds"};
  // A sequential (--threads 1) run never constructs the pool, so its
  // counters legitimately don't exist; require them only alongside
  // --expect-workers.
  if (expect_pool) required.push_back("pool.tasks_executed");
  for (const char* key : required) {
    const Value* entry = metrics->find(key);
    if (!entry || !entry->isObject()) {
      fail(std::string("missing metric '") + key + "'");
      continue;
    }
    const Value* type = entry->find("type");
    if (!type || !type->isString())
      fail(std::string("metric '") + key + "' has no type");
    const Value* reading = entry->find(
        type && type->string == "histogram" ? "count" : "value");
    if (!reading || !reading->isNumber() || reading->number < 0)
      fail(std::string("metric '") + key +
           "' has no non-negative reading");
  }

  // Latency summary for the log: every histogram's count and estimated
  // p50/p90/p99 (exported since the percentile fields landed in
  // pdw-metrics-1; their absence is a failure — stale producer).
  for (const auto& [name, entry] : metrics->object) {
    const Value* type = entry.find("type");
    if (!type || !type->isString() || type->string != "histogram") continue;
    const Value* count = entry.find("count");
    double percentiles[3] = {0, 0, 0};
    bool have = true;
    const char* keys[3] = {"p50", "p90", "p99"};
    for (int i = 0; i < 3; ++i) {
      const Value* p = entry.find(keys[i]);
      if (p && p->isNumber()) {
        percentiles[i] = p->number;
      } else {
        fail("histogram '" + name + "' has no numeric '" + keys[i] + "'");
        have = false;
      }
    }
    if (have)
      std::fprintf(stderr,
                   "obs_check: histogram %-30s count %8.0f  p50 %10.3g  "
                   "p90 %10.3g  p99 %10.3g\n",
                   name.c_str(),
                   count && count->isNumber() ? count->number : -1.0,
                   percentiles[0], percentiles[1], percentiles[2]);
  }
}

// ---- flight stream (`pdw-flight-1` JSONL) --------------------------------

/// Per-kind totals of a flight stream, split by lane, plus the header count.
struct FlightTotals {
  std::map<std::string, std::map<std::string, double>> by_lane;
  int solve_headers = 0;
};

FlightTotals checkFlight(const std::string& path) {
  FlightTotals totals;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail("flight file unreadable: " + path);
    return totals;
  }

  static const std::set<std::string> known_kinds = {
      "solve_begin", "node_open",   "node_solved",     "node_pruned",
      "node_branched", "incumbent", "bound_delta",     "warm_miss",
      "refactorization", "dual_stall", "cut_added"};

  std::string line;
  int line_no = 0;
  // Current block state: how many event lines the last header still owes,
  // its per-kind retained tally (to cross-check against counts+dropped).
  long long events_due = 0;
  double counts_sum = 0, dropped = 0, events_declared = 0;
  double last_seq = -1;
  std::string block_desc;

  const auto closeBlock = [&] {
    if (events_due > 0)
      fail(block_desc + ": declared " + std::to_string(events_declared) +
           " events but the block ended " + std::to_string(events_due) +
           " short");
    if (counts_sum != dropped + events_declared)
      fail(block_desc + ": counts sum to " + std::to_string(counts_sum) +
           " but dropped+events = " +
           std::to_string(dropped + events_declared));
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto doc = pdw::obs::json::parse(line);
    if (!doc || !doc->isObject()) {
      fail("flight line " + std::to_string(line_no) + " is not JSON");
      continue;
    }
    const Value* type = doc->find("type");
    if (!type || !type->isString()) {
      fail("flight line " + std::to_string(line_no) + " has no 'type'");
      continue;
    }

    if (type->string == "solve") {
      closeBlock();
      ++totals.solve_headers;
      block_desc = "flight solve block at line " + std::to_string(line_no);
      const Value* schema = doc->find("schema");
      if (!schema || !schema->isString() || schema->string != "pdw-flight-1")
        fail(block_desc + ": schema tag is not 'pdw-flight-1'");
      const Value* lane = doc->find("lane");
      const std::string lane_name =
          lane && lane->isString() ? lane->string : "<missing>";
      if (lane_name == "<missing>") fail(block_desc + ": no 'lane'");
      if (!doc->find("status") || !doc->find("status")->isString())
        fail(block_desc + ": no string 'status'");
      const Value* wall = doc->find("wall_seconds");
      if (!wall || !wall->isNumber() || wall->number < 0)
        fail(block_desc + ": no non-negative 'wall_seconds'");

      counts_sum = 0;
      const Value* counts = doc->find("counts");
      if (counts && counts->isObject()) {
        for (const auto& [kind, v] : counts->object) {
          if (!known_kinds.count(kind))
            fail(block_desc + ": unknown event kind '" + kind + "'");
          if (!v.isNumber() || v.number < 0) {
            fail(block_desc + ": count '" + kind + "' is not a number");
            continue;
          }
          counts_sum += v.number;
          totals.by_lane[lane_name][kind] += v.number;
        }
      } else {
        fail(block_desc + ": no 'counts' object");
      }
      const Value* dropped_v = doc->find("dropped");
      const Value* events_v = doc->find("events");
      dropped = dropped_v && dropped_v->isNumber() ? dropped_v->number : -1;
      events_declared =
          events_v && events_v->isNumber() ? events_v->number : -1;
      if (dropped < 0) fail(block_desc + ": no numeric 'dropped'");
      if (events_declared < 0) fail(block_desc + ": no numeric 'events'");
      events_due = static_cast<long long>(events_declared);
      last_seq = -1;
    } else if (type->string == "event") {
      if (totals.solve_headers == 0) {
        fail("flight line " + std::to_string(line_no) +
             ": event before any solve header");
        continue;
      }
      if (--events_due < 0)
        fail("flight line " + std::to_string(line_no) +
             ": more event lines than the header declared");
      const Value* kind = doc->find("kind");
      if (!kind || !kind->isString() || !known_kinds.count(kind->string))
        fail("flight line " + std::to_string(line_no) +
             ": unknown event kind");
      for (const char* key : {"seq", "t_us", "node", "value", "extra"})
        if (!doc->find(key) || !doc->find(key)->isNumber())
          fail("flight line " + std::to_string(line_no) +
               ": no numeric '" + key + "'");
      const Value* seq = doc->find("seq");
      if (seq && seq->isNumber()) {
        if (seq->number <= last_seq)
          fail("flight line " + std::to_string(line_no) +
               ": seq not increasing within the block");
        last_seq = seq->number;
      }
    } else {
      fail("flight line " + std::to_string(line_no) + ": unknown type '" +
           type->string + "'");
    }
  }
  closeBlock();
  if (totals.solve_headers == 0)
    fail("flight stream has no solve headers: " + path);
  return totals;
}

/// Reconcile flight per-kind totals against a pdw-metrics-1 export. Exact
/// when the producing process dumped every solve (dump_all) and ran the
/// canonical search single-threaded per lane, which tier1.sh guarantees.
void reconcileFlight(const FlightTotals& totals,
                     const std::string& metrics_path) {
  const std::string text = slurp(metrics_path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return;  // checkMetrics already failed it
  const Value* metrics = doc->find("metrics");
  if (!metrics || !metrics->isObject()) return;

  const auto counterValue = [&](const char* name) -> double {
    const Value* entry = metrics->find(name);
    const Value* v = entry ? entry->find("value") : nullptr;
    return v && v->isNumber() ? v->number : 0.0;
  };
  const auto laneKind = [&](const char* lane, const char* kind) -> double {
    const auto lit = totals.by_lane.find(lane);
    if (lit == totals.by_lane.end()) return 0.0;
    const auto kit = lit->second.find(kind);
    return kit == lit->second.end() ? 0.0 : kit->second;
  };
  const auto expectEqual = [&](const char* what, double flight,
                               double registry) {
    if (flight != registry)
      fail(std::string("flight/registry mismatch: ") + what + " " +
           std::to_string(flight) + " (flight) != " +
           std::to_string(registry) + " (registry)");
    else
      std::fprintf(stderr, "obs_check: flight %-38s %12.0f == registry\n",
                   what, flight);
  };

  expectEqual("canonical node_open vs ilp.bb.nodes",
              laneKind("canonical", "node_open"), counterValue("ilp.bb.nodes"));
  expectEqual("diver node_open vs ilp.bb.diver_nodes",
              laneKind("diver", "node_open"),
              counterValue("ilp.bb.diver_nodes"));
  expectEqual("canonical warm_miss vs ilp.simplex.warm_misses",
              laneKind("canonical", "warm_miss"),
              counterValue("ilp.simplex.warm_misses"));
  expectEqual("canonical cut_added vs ilp.cuts.added",
              laneKind("canonical", "cut_added"),
              counterValue("ilp.cuts.added"));

  const double solves = counterValue("ilp.bb.solves");
  if (static_cast<double>(totals.solve_headers) > solves)
    fail("flight stream has " + std::to_string(totals.solve_headers) +
         " solve headers but the registry counted only " +
         std::to_string(solves) + " ilp.bb.solves");
  else
    std::fprintf(stderr,
                 "obs_check: flight solve headers %d <= ilp.bb.solves %.0f\n",
                 totals.solve_headers, solves);
}

// ---- pdwd daemon counters (`pdwd.*`) -------------------------------------

/// Validate the pdwd request-accounting counters of a pdw-metrics-1 export.
/// The file may be either a raw registry export or one `pdw-resp-1` metrics
/// response line (the scrape embeds the export as its `metrics` member), so
/// tier1.sh can feed a scraped response straight in. Checks the partition
/// invariant documented in obs/metric_names.h: every admitted solve ends as
/// exactly one of solve_ok / budget_hits / deadline_expired, so those plus
/// rejected_queue_full can never exceed pdwd.requests; plan-cache hits can
/// only come from completed solves.
void checkPdwd(const std::string& path, long long expect_solves,
               bool expect_warm_solves) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("pdwd file empty or unreadable: " + path);
  auto doc = pdw::obs::json::parse(text);
  if (!doc && text.find('\n') != std::string::npos)
    doc = pdw::obs::json::parse(text.substr(0, text.find('\n')));
  if (!doc || !doc->isObject()) return fail("pdwd file is not a JSON object");

  const Value* root = &*doc;
  const Value* schema = root->find("schema");
  if (schema && schema->isString() && schema->string == "pdw-resp-1") {
    root = root->find("metrics");
    if (!root || !root->isObject())
      return fail("pdwd response has no embedded 'metrics' object");
  }
  schema = root->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-metrics-1")
    fail("pdwd metrics schema tag is not 'pdw-metrics-1'");
  const Value* metrics = root->find("metrics");
  if (!metrics || !metrics->isObject())
    return fail("pdwd export has no 'metrics' object");

  const auto counter = [&](const char* name, bool required) -> double {
    const Value* entry = metrics->find(name);
    const Value* v = entry ? entry->find("value") : nullptr;
    if (!v || !v->isNumber() || v->number < 0) {
      if (required)
        fail(std::string("missing or negative pdwd counter '") + name + "'");
      return 0.0;
    }
    return v->number;
  };

  const double requests = counter("pdwd.requests", true);
  const double ok = counter("pdwd.solve_ok", true);
  const double budget = counter("pdwd.budget_hits", false);
  const double deadline = counter("pdwd.deadline_expired", false);
  const double rejected = counter("pdwd.rejected_queue_full", false);
  const double hits = counter("pdwd.plan_cache.hits", false);
  const double misses = counter("pdwd.plan_cache.misses", false);

  if (ok + budget + deadline + rejected > requests)
    fail("pdwd outcome counters exceed pdwd.requests: " +
         std::to_string(ok + budget + deadline + rejected) + " > " +
         std::to_string(requests));
  if (hits > ok + budget)
    fail("pdwd.plan_cache.hits " + std::to_string(hits) +
         " exceeds completed solves " + std::to_string(ok + budget));
  if (expect_solves >= 0 &&
      static_cast<long long>(ok + budget) != expect_solves)
    fail("expected exactly " + std::to_string(expect_solves) +
         " completed pdwd solves, counted " +
         std::to_string(static_cast<long long>(ok + budget)));
  if (expect_warm_solves && hits <= 0)
    fail("expected pdwd.plan_cache.hits > 0 (no warm solve ever served)");
  std::fprintf(stderr,
               "obs_check: pdwd requests %.0f = ok %.0f + budget %.0f + "
               "deadline %.0f + rejected %.0f + other; plan cache %0.f/%.0f "
               "warm\n",
               requests, ok, budget, deadline, rejected, hits, hits + misses);
}

// ---- incremental resolve counters (`pdw.resolve.*`) ----------------------

/// Validate the resolve partition invariants documented in
/// obs/metric_names.h against a pdw-metrics-1 export (raw, or embedded in a
/// `pdw-resp-1` metrics-scrape line, same as --pdwd). Every counted cell is
/// either frontier or reused, every target recomputed or reused, a full
/// fallback consumes one request, and the latency histogram observes each
/// successful resolve exactly once (errors bump requests but nothing else).
void checkResolve(const std::string& path) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("resolve file empty or unreadable: " + path);
  auto doc = pdw::obs::json::parse(text);
  if (!doc && text.find('\n') != std::string::npos)
    doc = pdw::obs::json::parse(text.substr(0, text.find('\n')));
  if (!doc || !doc->isObject())
    return fail("resolve file is not a JSON object");

  const Value* root = &*doc;
  const Value* schema = root->find("schema");
  if (schema && schema->isString() && schema->string == "pdw-resp-1") {
    root = root->find("metrics");
    if (!root || !root->isObject())
      return fail("resolve response has no embedded 'metrics' object");
  }
  schema = root->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-metrics-1")
    fail("resolve metrics schema tag is not 'pdw-metrics-1'");
  const Value* metrics = root->find("metrics");
  if (!metrics || !metrics->isObject())
    return fail("resolve export has no 'metrics' object");

  // Counters register lazily on first increment, so a clean run never
  // materializes the error/fallback counters — missing means zero for
  // those; the partition counters must be present once a resolve ran.
  const auto counter = [&](const char* name, bool required = true) -> double {
    const Value* entry = metrics->find(name);
    const Value* v = entry ? entry->find("value") : nullptr;
    if (!v || !v->isNumber() || v->number < 0) {
      if (required)
        fail(std::string("missing or negative resolve counter '") + name +
             "'");
      return 0.0;
    }
    return v->number;
  };

  const double requests = counter("pdw.resolve.requests");
  const double errors = counter("pdw.resolve.errors", false);
  const double fallbacks = counter("pdw.resolve.full_fallbacks", false);
  const double cells = counter("pdw.resolve.cells_total");
  const double frontier = counter("pdw.resolve.frontier_cells", false);
  const double reused = counter("pdw.resolve.reused_cells", false);
  const double targets = counter("pdw.resolve.targets_total");
  const double recomputed = counter("pdw.resolve.targets_recomputed", false);
  const double targets_reused = counter("pdw.resolve.targets_reused", false);

  if (requests <= 0)
    fail("pdw.resolve.requests is zero (no resolve was ever attempted)");
  if (errors > requests)
    fail("pdw.resolve.errors " + std::to_string(errors) +
         " exceeds pdw.resolve.requests " + std::to_string(requests));
  if (fallbacks > requests)
    fail("pdw.resolve.full_fallbacks " + std::to_string(fallbacks) +
         " exceeds pdw.resolve.requests " + std::to_string(requests));
  if (cells != frontier + reused)
    fail("resolve cell partition broken: cells_total " +
         std::to_string(cells) + " != frontier " + std::to_string(frontier) +
         " + reused " + std::to_string(reused));
  if (targets != recomputed + targets_reused)
    fail("resolve target partition broken: targets_total " +
         std::to_string(targets) + " != recomputed " +
         std::to_string(recomputed) + " + reused " +
         std::to_string(targets_reused));

  const Value* seconds = metrics->find("pdw.resolve.seconds");
  const Value* count = seconds ? seconds->find("count") : nullptr;
  const double observed = count && count->isNumber() ? count->number : -1;
  if (observed != requests - errors)
    fail("pdw.resolve.seconds count " + std::to_string(observed) +
         " != successful resolves " + std::to_string(requests - errors));
  std::fprintf(stderr,
               "obs_check: resolve requests %.0f (errors %.0f, full "
               "fallbacks %.0f); cells %.0f = frontier %.0f + reused %.0f; "
               "targets %.0f = recomputed %.0f + reused %.0f\n",
               requests, errors, fallbacks, cells, frontier, reused, targets,
               recomputed, targets_reused);
}

void checkBench(const std::string& path, bool expect_warm_hits,
                const std::string& expect_engine) {
  const std::string text = slurp(path);
  if (text.empty()) return fail("bench file empty or unreadable: " + path);
  const auto doc = pdw::obs::json::parse(text);
  if (!doc || !doc->isObject()) return fail("bench is not a JSON object");
  const Value* schema = doc->find("schema");
  if (!schema || !schema->isString() || schema->string != "pdw-bench-1")
    fail("bench schema tag is not 'pdw-bench-1'");
  if (!expect_engine.empty()) {
    const Value* engine = doc->find("engine");
    if (!engine || !engine->isString())
      fail("bench has no string 'engine' label (expected '" + expect_engine +
           "')");
    else if (engine->string != expect_engine)
      fail("bench engine is '" + engine->string + "', expected '" +
           expect_engine + "'");
  }
  const Value* benchmarks = doc->find("benchmarks");
  if (!benchmarks || !benchmarks->isArray() || benchmarks->array.empty())
    return fail("bench has no non-empty 'benchmarks' array");

  const std::vector<const char*> numeric_keys = {
      "wall_seconds", "mip_solves",  "nodes",    "simplex_iterations",
      "warm_hits",    "warm_misses", "dual_pivots", "rc_fixed"};
  std::map<std::string, double> sums;
  for (const Value& b : benchmarks->array) {
    const Value* name = b.find("name");
    const std::string n =
        name && name->isString() ? name->string : "<unnamed>";
    if (n == "<unnamed>") fail("benchmark record without a name");
    for (const char* key : numeric_keys) {
      const Value* v = b.find(key);
      if (!v || !v->isNumber() || v->number < 0) {
        fail("benchmark '" + n + "' has no non-negative '" + key + "'");
        continue;
      }
      sums[key] += v->number;
    }
  }

  const Value* totals = doc->find("totals");
  if (!totals || !totals->isObject())
    return fail("bench has no 'totals' object");
  for (const char* key : numeric_keys) {
    const Value* v = totals->find(key);
    if (!v || !v->isNumber()) {
      fail(std::string("totals has no numeric '") + key + "'");
      continue;
    }
    // The solver counters are exact integers; wall_seconds is a float sum
    // of values serialized at ~6 significant digits, so its tolerance must
    // absorb the per-record rounding.
    const double tol = std::strcmp(key, "wall_seconds") == 0
                           ? 0.01 + 1e-3 * std::abs(v->number)
                           : 0.5;
    if (std::abs(v->number - sums[key]) > tol)
      fail(std::string("totals['") + key + "'] does not equal the sum of " +
           "the per-benchmark records");
  }
  if (expect_warm_hits) {
    const Value* hits = totals->find("warm_hits");
    if (!hits || !hits->isNumber() || hits->number <= 0)
      fail("expected totals.warm_hits > 0 (warm dual path never taken)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, bench_path, flight_path, pdwd_path;
  std::string resolve_path;
  std::string expect_engine;
  bool expect_warm_hits = false;
  bool expect_warm_solves = false;
  long long expect_solves = -1;
  int expect_workers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--trace") {
      const char* v = next();
      if (v) trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v) metrics_path = v;
    } else if (arg == "--expect-workers") {
      const char* v = next();
      if (v) expect_workers = std::atoi(v);
    } else if (arg == "--bench") {
      const char* v = next();
      if (v) bench_path = v;
    } else if (arg == "--flight") {
      const char* v = next();
      if (v) flight_path = v;
    } else if (arg == "--expect-warm-hits") {
      expect_warm_hits = true;
    } else if (arg == "--pdwd") {
      const char* v = next();
      if (v) pdwd_path = v;
    } else if (arg == "--resolve") {
      const char* v = next();
      if (v) resolve_path = v;
    } else if (arg == "--expect-solves") {
      const char* v = next();
      if (v) expect_solves = std::atoll(v);
    } else if (arg == "--expect-warm-solves") {
      expect_warm_solves = true;
    } else if (arg == "--expect-engine") {
      const char* v = next();
      if (v) expect_engine = v;
    } else if (arg == "--baseline") {
      // Retired: the totals-only gate predates the run-record store.
      // tools/pdw_report diffs per-row with configurable thresholds.
      std::fprintf(stderr,
                   "obs_check: --baseline has been removed; use "
                   "pdw_report --against BENCH.json\n");
      return 2;
    } else {
      std::fprintf(stderr,
                   "usage: obs_check [--trace FILE] [--metrics FILE] "
                   "[--expect-workers N] [--bench FILE] "
                   "[--flight FILE.jsonl] [--expect-warm-hits] "
                   "[--expect-engine NAME] [--pdwd FILE] "
                   "[--resolve FILE] [--expect-solves N] "
                   "[--expect-warm-solves]\n");
      return 2;
    }
  }
  if (trace_path.empty() && metrics_path.empty() && bench_path.empty() &&
      flight_path.empty() && pdwd_path.empty() && resolve_path.empty()) {
    std::fprintf(stderr, "obs_check: nothing to check\n");
    return 2;
  }
  if (!trace_path.empty()) checkTrace(trace_path, expect_workers);
  if (!metrics_path.empty()) checkMetrics(metrics_path, expect_workers > 0);
  if (!bench_path.empty())
    checkBench(bench_path, expect_warm_hits, expect_engine);
  if (!flight_path.empty()) {
    const FlightTotals totals = checkFlight(flight_path);
    if (!metrics_path.empty()) reconcileFlight(totals, metrics_path);
  }
  if (!pdwd_path.empty())
    checkPdwd(pdwd_path, expect_solves, expect_warm_solves);
  if (!resolve_path.empty()) checkResolve(resolve_path);
  if (failures == 0) {
    std::fprintf(stderr, "obs_check: OK\n");
    return 0;
  }
  return 1;
}

// pdwd — the resident wash-optimization daemon (DESIGN.md §14).
//
//   pdwd --socket /tmp/pdwd.sock [options]   # serve a unix-domain socket
//   pdwd --stdio [options]                   # serve stdin/stdout (pipes)
//
// Options:
//   --lanes N          concurrent solver lanes                  (default 2)
//   --queue N          admission-queue capacity                 (default 16)
//   --threads N        shared pool width, 0 = hardware          (default 0)
//   --route-cache N    shared route-cache capacity              (default 4096)
//   --plan-cache N     plan-cache capacity                      (default 256)
//   --budget S         default scheduling-ILP budget, seconds   (default 4)
//   --budget-nodes N   default scheduling-ILP node cap          (default 60000)
//   --path-budget S    per-operation path-ILP budget, seconds   (default 1)
//   --slow S           slow-request log threshold, seconds      (default 5)
//   --engine NAME      default LP backend (revised | dense)
//   --cuts MODE        default cut policy (on | off | gomory | cover)
//   --metrics-out F    write a pdw-metrics-1 export on exit
//   --flight-out F     flight-record budget-capped solves to F (JSONL)
//   --log-level L      trace | debug | info | warn | error | off
//
// The daemon exits after a `{"schema":"pdw-req-1","type":"shutdown"}`
// request (in-flight solves drain first) or, in --stdio mode, at EOF.
// See README "Running pdwd" for client one-liners.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/metrics.h"
#include "service/daemon.h"
#include "service/server.h"
#include "util/logging.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pdwd (--socket PATH | --stdio) [--lanes N] "
               "[--queue N] [--threads N]\n"
               "            [--route-cache N] [--plan-cache N] [--budget S] "
               "[--budget-nodes N]\n"
               "            [--path-budget S] [--slow S] [--engine NAME] "
               "[--cuts MODE]\n"
               "            [--metrics-out FILE] [--flight-out FILE] "
               "[--log-level LEVEL]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // A resident daemon must outlive its clients: a peer that disconnects
  // before reading its response would otherwise SIGPIPE-kill the process.
  // Socket writes also pass MSG_NOSIGNAL, but stdio mode writes to a pipe.
  std::signal(SIGPIPE, SIG_IGN);
  std::string socket_path, metrics_out, log_level;
  bool stdio = false;
  pdw::service::DaemonOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--stdio") {
      stdio = true;
    } else if (const char* v = value("--socket")) {
      socket_path = v;
    } else if (const char* v = value("--lanes")) {
      options.lanes = std::atoi(v);
    } else if (const char* v = value("--queue")) {
      options.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--threads")) {
      options.threads = std::atoi(v);
    } else if (const char* v = value("--route-cache")) {
      options.route_cache_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--plan-cache")) {
      options.plan_cache_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (const char* v = value("--budget")) {
      options.default_budget_s = std::atof(v);
    } else if (const char* v = value("--budget-nodes")) {
      options.default_budget_nodes = std::atoll(v);
    } else if (const char* v = value("--path-budget")) {
      options.path_budget_s = std::atof(v);
    } else if (const char* v = value("--slow")) {
      options.slow_request_seconds = std::atof(v);
    } else if (const char* v = value("--engine")) {
      options.engine = v;
    } else if (const char* v = value("--cuts")) {
      options.cuts = v;
    } else if (const char* v = value("--metrics-out")) {
      metrics_out = v;
    } else if (const char* v = value("--flight-out")) {
      options.flight.enabled = true;
      options.flight.path = v;
      options.flight.dump_on_limit = true;
    } else if (const char* v = value("--log-level")) {
      log_level = v;
    } else {
      return usage();
    }
  }
  if (!stdio && socket_path.empty()) return usage();
  if (stdio && !socket_path.empty()) {
    std::fprintf(stderr, "pdwd: --socket and --stdio are exclusive\n");
    return 2;
  }
  if (!log_level.empty())
    pdw::util::setLogLevel(pdw::util::parseLogLevel(log_level));

  int exit_code = 0;
  {
    pdw::service::Daemon daemon(options);
    if (stdio) {
      const std::size_t lines =
          pdw::service::serveStdio(daemon, std::cin, std::cout);
      std::fprintf(stderr, "pdwd: served %zu request(s) over stdio\n", lines);
    } else {
      try {
        pdw::service::SocketServer server(daemon, socket_path);
        server.run();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "pdwd: %s\n", e.what());
        exit_code = 1;
      }
    }
    daemon.shutdown();
  }

  if (!metrics_out.empty() &&
      !pdw::obs::Registry::instance().writeJson(metrics_out)) {
    std::fprintf(stderr, "pdwd: failed to write metrics to %s\n",
                 metrics_out.c_str());
    exit_code = 1;
  }
  return exit_code;
}

// Parallel-runtime scaling: full PDW wall-clock on the largest Table-II
// benchmark (Synthetic3) at 1/2/4/8 execution lanes, plus a warm-route-cache
// second pass. Custom main (not google-benchmark): one timed run per thread
// count is what we want — the workload is tens of seconds, and the point is
// the speedup table and the plan-identity check, not statistics.
//
// Determinism check included: the describe() dump of every plan must be
// byte-identical to the single-threaded one.
//
// All timings come from the pipeline's own StageTimings snapshot
// (r.timings) — no clock of our own around run().
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "assay/benchmarks.h"
#include "core/pipeline.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "util/thread_pool.h"

namespace {

using namespace pdw;

}  // namespace

int main() {
  const assay::Benchmark b =
      assay::makeBenchmark(assay::BenchmarkId::Synthetic3);
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));

  std::printf("benchmark: %s (%d ops, %zu tasks)\n", b.name.c_str(),
              b.graph->numOps(), base.schedule.tasks().size());
  std::printf("hardware_concurrency: %d\n",
              util::ThreadPool::hardwareConcurrency());
  std::printf("(speedup > 1 requires as many physical cores as lanes)\n\n");

  std::printf("%8s %12s %10s %10s %12s %s\n", "threads", "wall [s]",
              "speedup", "routing[s]", "schedule[s]", "plan");

  std::string reference_plan;
  double t1 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    Pipeline pipeline(core::PdwOptions{}.withThreads(threads));
    const PdwResult r = pipeline.run(base.schedule);
    const double wall = r.timings.total_s;

    const std::string plan = r.plan.schedule.describe();
    if (threads == 1) {
      reference_plan = plan;
      t1 = wall;
    }
    const bool identical = plan == reference_plan;
    std::printf("%8d %12.2f %9.2fx %10.2f %12.2f %s\n", threads, wall,
                t1 / wall, r.timings.routing_s, r.timings.scheduling_s,
                identical ? "identical" : "DIFFERS (BUG)");
    if (!identical) return 1;
  }

  // Warm-cache pass: a second run() on the same Pipeline hits the route
  // cache for every wash-path problem.
  std::printf("\nwarm route cache (threads=1):\n");
  Pipeline pipeline(core::PdwOptions{}.withThreads(1));
  for (int pass = 1; pass <= 2; ++pass) {
    const PdwResult r = pipeline.run(base.schedule);
    // Cache numbers from the per-run metrics delta rather than the
    // cumulative r.cache stats, so pass 2 reports its own hits only.
    const auto hits = r.metrics.counter("pdw.route_cache.hits");
    const auto misses = r.metrics.counter("pdw.route_cache.misses");
    const auto lookups = hits + misses;
    std::printf("  pass %d: %6.2f s  routing %5.2f s  cache %lld/%lld hits "
                "(%.0f%%)\n",
                pass, r.timings.total_s, r.timings.routing_s,
                static_cast<long long>(hits), static_cast<long long>(lookups),
                lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(lookups)
                            : 0.0);
    if (r.plan.schedule.describe() != reference_plan) {
      std::printf("  plan DIFFERS (BUG)\n");
      return 1;
    }
  }
  return 0;
}

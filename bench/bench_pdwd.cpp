// bench_pdwd — load generator for the pdwd wash-optimization daemon.
//
//   bench_pdwd [--quick] [--passes N] [--clients N] [--budget S]
//              [--connect SOCKET | (in-process daemon)] [--shutdown]
//              [--json-out FILE] [--scrape-out FILE]
//              [--expect-warm-rate R] [--expect-warm-speedup X]
//              [--run-store FILE --label NAME] [--metrics-out FILE]
//
// Replays the Table-II benchmark mix (--quick: the three smallest) against
// a daemon, `--passes` times over. Pass 0 is the cold pass — every request
// misses the shared plan cache and runs the full pipeline; later passes
// should be served warm. Requests within a pass are distributed round-robin
// over `--clients` concurrent client threads, with a barrier between
// passes so the warm passes never race the cold one.
//
// Reports per-benchmark and aggregate latency (cold p50, warm p50/p99) and
// the warm service rate, emits the rows as a `pdw-bench-1` document
// (--json-out) and as run-store rows (--run-store/--label) for pdw_report
// gating. Row metrics, all lower-is-better:
//   wall_seconds    total request wall time of the row's benchmark
//   cold_ms         pass-0 latency
//   warm_p50_ms / warm_p99_ms
//   warm_miss_rate  warm-pass requests NOT served from the plan cache,
//                   over warm-pass requests (0 when every repeat hit)
//
// In-process mode (no --connect) hosts the Daemon in this process and
// calls Daemon::handleLine directly — no sockets involved, used by quick
// local runs. --connect PATH speaks the line protocol to a running
// `pdwd --socket PATH` over its unix socket with one connection per
// client thread — the tier1.sh smoke stage mode. --scrape-out saves the
// daemon's own metrics (a metrics-request scrape) for obs_check --pdwd;
// --shutdown sends a shutdown request once done (stops the daemon).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/json.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/protocol.h"

namespace {

using pdw::obs::json::Value;

struct Sample {
  std::string benchmark;
  int pass = 0;
  double latency_ms = 0.0;
  bool warm = false;
  std::string status;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_pdwd [--quick] [--passes N] [--clients N] [--budget S]\n"
      "                  [--connect SOCKET] [--shutdown] [--json-out FILE]\n"
      "                  [--scrape-out FILE] [--expect-warm-rate R]\n"
      "                  [--expect-warm-speedup X] [--trace-out FILE]\n"
      "                  [--metrics-out FILE] [--run-store FILE] "
      "[--label NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pdw::bench::ObsArgs obs_args;
  bool quick = false, shutdown_daemon = false;
  int passes = 3, clients = 2;
  double budget_s = 0.0;  // 0: daemon default
  double expect_warm_rate = -1.0, expect_warm_speedup = -1.0;
  std::string connect_path, json_out, scrape_out;

  for (int i = 1; i < argc; ++i) {
    if (obs_args.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--shutdown") {
      shutdown_daemon = true;
    } else if (const char* v = value("--passes")) {
      passes = std::atoi(v);
    } else if (const char* v = value("--clients")) {
      clients = std::atoi(v);
    } else if (const char* v = value("--budget")) {
      budget_s = std::atof(v);
    } else if (const char* v = value("--connect")) {
      connect_path = v;
    } else if (const char* v = value("--json-out")) {
      json_out = v;
    } else if (const char* v = value("--scrape-out")) {
      scrape_out = v;
    } else if (const char* v = value("--expect-warm-rate")) {
      expect_warm_rate = std::atof(v);
    } else if (const char* v = value("--expect-warm-speedup")) {
      expect_warm_speedup = std::atof(v);
    } else {
      return usage();
    }
  }
  passes = std::max(1, passes);
  clients = std::max(1, clients);
  obs_args.applyStartup();

  // --quick keeps to the three benchmarks whose scheduling ILPs prove
  // optimality within ~a second, so the smoke stage measures cache
  // behavior, not solver tails.
  std::vector<std::string> mix;
  for (pdw::assay::BenchmarkId id : pdw::assay::allBenchmarks())
    mix.push_back(pdw::assay::toString(id));
  if (quick) mix = {"PCR", "Kinase act-1", "Synthetic1"};

  // Transport: one in-process daemon shared by every client thread, or one
  // socket connection per client.
  std::optional<pdw::service::Daemon> daemon;
  std::vector<pdw::service::LineClient> sockets(
      static_cast<std::size_t>(clients));
  if (connect_path.empty()) {
    pdw::service::DaemonOptions options;
    options.lanes = clients;
    if (!obs_args.flight_out.empty())
      options.flight = obs_args.flightConfig();
    daemon.emplace(options);
  } else {
    for (auto& socket : sockets)
      if (!socket.connect(connect_path)) {
        std::fprintf(stderr, "bench_pdwd: cannot connect to %s\n",
                     connect_path.c_str());
        return 2;
      }
  }
  const auto transport =
      [&](int client, const std::string& line) -> std::optional<std::string> {
    if (daemon) return daemon->handleLine(line);
    return sockets[static_cast<std::size_t>(client)].roundTrip(line);
  };

  // The workload: passes x mix, round-robin over the client threads with a
  // barrier between passes (pass 0 must finish cold before pass 1 warms).
  std::vector<Sample> samples;
  std::mutex samples_mutex;
  bool transport_failed = false;
  int request_seq = 0;
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      std::vector<std::string> share;
      for (std::size_t b = 0; b < mix.size(); ++b)
        if (static_cast<int>(b) % clients == c) share.push_back(mix[b]);
      if (share.empty()) continue;
      threads.emplace_back([&, c, pass, share] {
        for (const std::string& name : share) {
          std::ostringstream req;
          req << "{\"schema\":\"pdw-req-1\",\"type\":\"solve\",\"id\":\"b"
              << pass << "-" << c << "\",\"benchmark\":"
              << pdw::obs::json::quote(name);
          if (budget_s > 0.0) req << ",\"budget_s\":" << budget_s;
          req << "}";
          const auto t0 = std::chrono::steady_clock::now();
          const std::optional<std::string> response =
              transport(c, req.str());
          const double ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          std::lock_guard<std::mutex> lock(samples_mutex);
          if (!response) {
            transport_failed = true;
            continue;
          }
          Sample sample;
          sample.benchmark = name;
          sample.pass = pass;
          sample.latency_ms = ms;
          const auto doc = pdw::obs::json::parse(*response);
          if (doc) {
            const Value* status = doc->find("status");
            const Value* warm = doc->find("warm");
            if (status && status->isString()) sample.status = status->string;
            sample.warm = warm && warm->kind == Value::Kind::Bool &&
                          warm->boolean;
          }
          samples.push_back(std::move(sample));
          ++request_seq;
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  (void)request_seq;

  if (transport_failed) {
    std::fprintf(stderr, "bench_pdwd: transport failure mid-run\n");
    return 1;
  }

  // Aggregate per benchmark and overall.
  int failures = 0;
  std::vector<double> cold_all, warm_all;
  long long warm_requests = 0, warm_served = 0;
  struct Row {
    double wall_s = 0.0, cold_ms = 0.0;
    std::vector<double> warm_ms;
    long long warm_hits = 0, warm_misses = 0;
  };
  std::map<std::string, Row> rows;
  for (const Sample& sample : samples) {
    if (sample.status != "ok" && sample.status != "budget_hit") {
      std::fprintf(stderr, "bench_pdwd: %s pass %d ended '%s'\n",
                   sample.benchmark.c_str(), sample.pass,
                   sample.status.c_str());
      ++failures;
      continue;
    }
    Row& row = rows[sample.benchmark];
    row.wall_s += sample.latency_ms / 1000.0;
    if (sample.pass == 0) {
      row.cold_ms = sample.latency_ms;
      cold_all.push_back(sample.latency_ms);
    } else {
      row.warm_ms.push_back(sample.latency_ms);
      warm_all.push_back(sample.latency_ms);
      ++warm_requests;
      if (sample.warm) {
        ++row.warm_hits;
        ++warm_served;
      } else {
        ++row.warm_misses;
      }
    }
  }

  const double cold_p50 = percentile(cold_all, 50);
  const double warm_p50 = percentile(warm_all, 50);
  const double warm_p99 = percentile(warm_all, 99);
  const double warm_rate =
      warm_requests == 0
          ? 0.0
          : static_cast<double>(warm_served) /
                static_cast<double>(warm_requests);

  std::printf("bench_pdwd: %zu benchmarks x %d passes, %d client(s)%s\n",
              mix.size(), passes, clients,
              connect_path.empty() ? " (in-process)" : "");
  std::printf("  %-14s %10s %12s %12s %6s\n", "benchmark", "cold_ms",
              "warm_p50_ms", "warm_p99_ms", "warm");
  for (const auto& [name, row] : rows)
    std::printf("  %-14s %10.1f %12.2f %12.2f %3lld/%lld\n", name.c_str(),
                row.cold_ms, percentile(row.warm_ms, 50),
                percentile(row.warm_ms, 99), row.warm_hits,
                row.warm_hits + row.warm_misses);
  std::printf(
      "  overall: cold p50 %.1f ms, warm p50 %.2f ms, warm p99 %.2f ms, "
      "warm rate %.3f, speedup %.1fx\n",
      cold_p50, warm_p50, warm_p99, warm_rate,
      warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0);

  // `pdw-bench-1` document with one record per benchmark.
  std::ostringstream doc;
  doc << "{\"schema\":\"pdw-bench-1\",\"bench\":\"bench_pdwd\",\"quick\":"
      << (quick ? "true" : "false") << ",\"passes\":" << passes
      << ",\"clients\":" << clients << ",\"benchmarks\":[";
  bool first = true;
  double total_wall = 0.0;
  for (const auto& [name, row] : rows) {
    const double miss_rate =
        row.warm_hits + row.warm_misses == 0
            ? 0.0
            : static_cast<double>(row.warm_misses) /
                  static_cast<double>(row.warm_hits + row.warm_misses);
    if (!first) doc << ",";
    first = false;
    total_wall += row.wall_s;
    doc << "{\"name\":" << pdw::obs::json::quote(name)
        << ",\"wall_seconds\":" << row.wall_s
        << ",\"cold_ms\":" << row.cold_ms
        << ",\"warm_p50_ms\":" << percentile(row.warm_ms, 50)
        << ",\"warm_p99_ms\":" << percentile(row.warm_ms, 99)
        << ",\"warm_miss_rate\":" << miss_rate << "}";
  }
  doc << "],\"totals\":{\"wall_seconds\":" << total_wall
      << ",\"warm_rate\":" << warm_rate << "}}";
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << doc.str() << "\n";
    if (!out)
      std::fprintf(stderr, "bench_pdwd: failed to write %s\n",
                   json_out.c_str());
  }

  // Run-store rows for pdw_report gating.
  if (!obs_args.run_store.empty()) {
    pdw::obs::RunRecord record =
        pdw::bench::makeRunRecord(obs_args, "bench_pdwd");
    record.quick = quick;
    record.config = "passes=" + std::to_string(passes) +
                    " clients=" + std::to_string(clients);
    for (const auto& [name, row] : rows) {
      pdw::obs::RunRow run_row;
      run_row.name = name;
      run_row.family = "pdwd";
      run_row.values["wall_seconds"] = row.wall_s;
      run_row.values["cold_ms"] = row.cold_ms;
      run_row.values["warm_p50_ms"] = percentile(row.warm_ms, 50);
      run_row.values["warm_p99_ms"] = percentile(row.warm_ms, 99);
      run_row.values["warm_miss_rate"] =
          row.warm_hits + row.warm_misses == 0
              ? 0.0
              : static_cast<double>(row.warm_misses) /
                    static_cast<double>(row.warm_hits + row.warm_misses);
      record.rows.push_back(std::move(run_row));
    }
    pdw::bench::appendRunRecord(obs_args, record);
  }

  // Scrape the daemon's own metrics (meaningful in both modes: in-process
  // the daemon shares our registry, over a socket it answers the scrape).
  if (!scrape_out.empty()) {
    const std::optional<std::string> scrape = transport(
        0, "{\"schema\":\"pdw-req-1\",\"type\":\"metrics\",\"id\":\"m\"}");
    if (scrape) {
      std::ofstream out(scrape_out, std::ios::binary);
      out << *scrape << "\n";
    } else {
      std::fprintf(stderr, "bench_pdwd: metrics scrape failed\n");
      ++failures;
    }
  }
  if (shutdown_daemon) {
    transport(0,
              "{\"schema\":\"pdw-req-1\",\"type\":\"shutdown\",\"id\":\"s\"}");
    if (daemon) daemon->shutdown();
  }

  if (expect_warm_rate >= 0.0 && warm_rate < expect_warm_rate) {
    std::fprintf(stderr,
                 "bench_pdwd: FAIL warm rate %.3f < expected %.3f\n",
                 warm_rate, expect_warm_rate);
    ++failures;
  }
  if (expect_warm_speedup >= 0.0 &&
      (warm_p50 <= 0.0 || cold_p50 / warm_p50 < expect_warm_speedup)) {
    std::fprintf(stderr,
                 "bench_pdwd: FAIL warm speedup %.2fx < expected %.2fx\n",
                 warm_p50 > 0.0 ? cold_p50 / warm_p50 : 0.0,
                 expect_warm_speedup);
    ++failures;
  }

  obs_args.finish();
  return failures == 0 ? 0 : 1;
}

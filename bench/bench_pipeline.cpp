// Substrate bench: wall-clock cost of each PDW pipeline stage
// (google-benchmark): synthesis, contamination analysis, wash-path routing
// (ILP vs BFS) and the full PDW / DAWO runs on a mid-size benchmark.
//
// Also accepts the shared observability flags (bench_common.h). With
// --run-store=FILE the google-benchmark suite is skipped; instead one
// sequential Pipeline run on the IVD benchmark appends a `pdw-run-1`
// record whose rows are the per-stage timings and the solver counter
// deltas of that run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "core/wash_path_ilp.h"
#include "ilp/lp_backend.h"
#include "obs/metric_names.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"
#include "wash/contamination.h"

namespace {

using namespace pdw;

const assay::Benchmark& ivd() {
  static assay::Benchmark b = assay::makeBenchmark(assay::BenchmarkId::Ivd);
  return b;
}

const synth::SynthResult& ivdBase() {
  static synth::SynthResult base =
      synth::synthesizeOnChip(*ivd().graph, synth::placeChip(ivd().library));
  return base;
}

void BM_Synthesis(benchmark::State& state) {
  for (auto _ : state) {
    synth::SynthResult r =
        synth::synthesizeOnChip(*ivd().graph, synth::placeChip(ivd().library));
    benchmark::DoNotOptimize(r.schedule.completionTime());
  }
}
BENCHMARK(BM_Synthesis);

void BM_ContaminationAnalysis(benchmark::State& state) {
  for (auto _ : state) {
    wash::ContaminationTracker tracker(ivdBase().schedule);
    wash::NecessityResult r = analyzeWashNecessity(tracker);
    benchmark::DoNotOptimize(r.targets.size());
  }
}
BENCHMARK(BM_ContaminationAnalysis);

std::vector<arch::Cell> someTargets() {
  wash::ContaminationTracker tracker(ivdBase().schedule);
  wash::NecessityResult r = analyzeWashNecessity(tracker);
  std::vector<arch::Cell> cells;
  for (std::size_t i = 0; i < r.targets.size() && cells.size() < 4; ++i)
    cells.push_back(r.targets[i].cell);
  return cells;
}

void BM_WashPathIlp(benchmark::State& state) {
  const auto targets = someTargets();
  for (auto _ : state) {
    auto path = core::routeWashPathIlp(ivdBase().schedule.chip(), targets);
    benchmark::DoNotOptimize(path.has_value());
  }
}
BENCHMARK(BM_WashPathIlp);

void BM_WashPathHeuristic(benchmark::State& state) {
  const auto targets = someTargets();
  for (auto _ : state) {
    auto path =
        core::routeWashPathHeuristic(ivdBase().schedule.chip(), targets);
    benchmark::DoNotOptimize(path.has_value());
  }
}
BENCHMARK(BM_WashPathHeuristic);

/// Per-stage breakdown straight from the pipeline's own StageTimings (no
/// hand-derived timing around the call), reported as per-iteration averages.
void reportStageTimings(benchmark::State& state, const StageTimings& totals) {
  using benchmark::Counter;
  state.counters["analysis_s"] =
      Counter(totals.analysis_s, Counter::kAvgIterations);
  state.counters["clustering_s"] =
      Counter(totals.clustering_s, Counter::kAvgIterations);
  state.counters["routing_s"] =
      Counter(totals.routing_s, Counter::kAvgIterations);
  state.counters["scheduling_s"] =
      Counter(totals.scheduling_s, Counter::kAvgIterations);
}

void accumulate(StageTimings& totals, const StageTimings& t) {
  totals.analysis_s += t.analysis_s;
  totals.clustering_s += t.clustering_s;
  totals.routing_s += t.routing_s;
  totals.scheduling_s += t.scheduling_s;
  totals.total_s += t.total_s;
}

void BM_FullPdw(benchmark::State& state) {
  StageTimings totals;
  for (auto _ : state) {
    // Fresh Pipeline per iteration: cold route cache, like a one-shot call.
    Pipeline pipeline(core::PdwOptions{}.withThreads(1));
    PdwResult r = pipeline.run(ivdBase().schedule);
    benchmark::DoNotOptimize(r.schedule().completionTime());
    accumulate(totals, r.timings);
  }
  reportStageTimings(state, totals);
}
BENCHMARK(BM_FullPdw)->Unit(benchmark::kMillisecond);

void BM_FullPdwWarmCache(benchmark::State& state) {
  // One long-lived Pipeline: after the first iteration every wash-path
  // routing problem hits the LRU route cache.
  Pipeline pipeline(core::PdwOptions{}.withThreads(1));
  StageTimings totals;
  std::int64_t cache_hits = 0;
  for (auto _ : state) {
    PdwResult r = pipeline.run(ivdBase().schedule);
    benchmark::DoNotOptimize(r.schedule().completionTime());
    accumulate(totals, r.timings);
    cache_hits += r.metrics.counter(obs::names::kRouteCacheHits);
  }
  reportStageTimings(state, totals);
  state.counters["cache_hits"] = benchmark::Counter(
      static_cast<double>(cache_hits), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullPdwWarmCache)->Unit(benchmark::kMillisecond);

void BM_FullDawo(benchmark::State& state) {
  for (auto _ : state) {
    wash::WashPlanResult r = baseline::runDawo(ivdBase().schedule);
    benchmark::DoNotOptimize(r.schedule.completionTime());
  }
}
BENCHMARK(BM_FullDawo)->Unit(benchmark::kMillisecond);

/// --run-store mode: one sequential end-to-end Pipeline run on IVD, rows =
/// per-stage timings plus the run's solver counter deltas.
int runStoreMode(const bench::ObsArgs& obs_args) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricsSnapshot before = reg.snapshot();

  core::PdwOptions options = core::PdwOptions{}.withThreads(1);
  options.solver.schedule.flight = obs_args.flightConfig();
  options.solver.path.flight = options.solver.schedule.flight;

  const auto start = std::chrono::steady_clock::now();
  Pipeline pipeline(options);
  const PdwResult result = pipeline.run(ivdBase().schedule);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const obs::MetricsSnapshot delta = reg.snapshot().since(before);

  obs::RunRecord record = bench::makeRunRecord(obs_args, "bench_pipeline");
  record.engine = ilp::defaultLpBackendName();
  record.config = options.solver.fingerprint();

  obs::RunRow stages;
  stages.name = "pipeline_ivd_stages";
  stages.family = "pipeline";
  stages.values = {
      {"wall_seconds", wall},
      {"analysis_seconds", result.timings.analysis_s},
      {"clustering_seconds", result.timings.clustering_s},
      {"routing_seconds", result.timings.routing_s},
      {"scheduling_seconds", result.timings.scheduling_s},
  };
  record.rows.push_back(std::move(stages));

  obs::RunRow solver;
  solver.name = "pipeline_ivd_solver";
  solver.family = "pipeline";
  solver.values = {
      {"mip_solves",
       static_cast<double>(delta.counter(obs::names::kBbSolves))},
      {"nodes", static_cast<double>(delta.counter(obs::names::kBbNodes))},
      {"simplex_iterations",
       static_cast<double>(delta.counter(obs::names::kSimplexIterations))},
      {"warm_hits",
       static_cast<double>(delta.counter(obs::names::kSimplexWarmHits))},
      {"warm_misses",
       static_cast<double>(delta.counter(obs::names::kSimplexWarmMisses))},
      {"rc_fixed",
       static_cast<double>(delta.counter(obs::names::kBbRcFixed))},
  };
  record.rows.push_back(std::move(solver));

  return bench::appendRunRecord(obs_args, record) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsArgs obs_args;
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (!obs_args.consume(argc, argv, i)) bench_args.push_back(argv[i]);
  }
  obs_args.applyStartup();

  int rc = 0;
  if (!obs_args.run_store.empty()) {
    rc = runStoreMode(obs_args);
  } else {
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data()))
      return 1;
    benchmark::RunSpecifiedBenchmarks();
  }
  obs_args.finish();
  return rc;
}

// Reproduces Fig. 4 of the paper: average waiting time of biochemical
// operations under DAWO vs PDW, per benchmark. PDW assigns washes to
// optimized time windows so they run concurrently with non-conflicting
// fluidic tasks, keeping operations closer to their base start times.
#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace pdw;

  std::vector<bench::BenchmarkRun> runs = bench::runAll();

  util::Table table(
      {"Benchmark", "avg wait DAWO (s)", "avg wait PDW (s)", "Im%"});
  table.setTitle("Fig. 4: Average waiting time of biochemical operations");

  double sum_d = 0, sum_p = 0;
  for (const bench::BenchmarkRun& run : runs) {
    table.addRow({run.name, util::fixed(run.dawo.avg_wait, 2),
                  util::fixed(run.pdw.avg_wait, 2),
                  util::improvementPercent(run.dawo.avg_wait,
                                           run.pdw.avg_wait)});
    sum_d += run.dawo.avg_wait;
    sum_p += run.pdw.avg_wait;
  }
  table.addSeparator();
  table.addRow({"Average", util::fixed(sum_d / runs.size(), 2),
                util::fixed(sum_p / runs.size(), 2),
                util::improvementPercent(sum_d, sum_p)});
  table.render(std::cout);

  // ASCII bar series (the paper's figure is a bar chart).
  std::cout << "\nbar chart (each # = 0.5 s):\n";
  for (const bench::BenchmarkRun& run : runs) {
    const auto bar = [](double v) {
      return std::string(static_cast<std::size_t>(v / 0.5 + 0.5), '#');
    };
    std::cout << util::format("  %-14s DAWO %-40s %.2f\n", run.name.c_str(),
                              bar(run.dawo.avg_wait).c_str(),
                              run.dawo.avg_wait);
    std::cout << util::format("  %-14s PDW  %-40s %.2f\n", "",
                              bar(run.pdw.avg_wait).c_str(),
                              run.pdw.avg_wait);
  }
  return 0;
}

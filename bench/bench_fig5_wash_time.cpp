// Reproduces Fig. 5 of the paper: total wash time under DAWO vs PDW, per
// benchmark. PDW needs fewer washes (necessity analysis) over shorter paths
// (global ILP routing), so the total time spent washing drops.
#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

int main() {
  using namespace pdw;

  std::vector<bench::BenchmarkRun> runs = bench::runAll();

  util::Table table(
      {"Benchmark", "wash time DAWO (s)", "wash time PDW (s)", "Im%"});
  table.setTitle("Fig. 5: Total wash time");

  double sum_d = 0, sum_p = 0;
  for (const bench::BenchmarkRun& run : runs) {
    table.addRow({run.name, util::fixed(run.dawo.total_wash_time, 1),
                  util::fixed(run.pdw.total_wash_time, 1),
                  util::improvementPercent(run.dawo.total_wash_time,
                                           run.pdw.total_wash_time)});
    sum_d += run.dawo.total_wash_time;
    sum_p += run.pdw.total_wash_time;
  }
  table.addSeparator();
  table.addRow({"Average", util::fixed(sum_d / runs.size(), 1),
                util::fixed(sum_p / runs.size(), 1),
                util::improvementPercent(sum_d, sum_p)});
  table.render(std::cout);

  std::cout << "\nbar chart (each # = 2 s):\n";
  for (const bench::BenchmarkRun& run : runs) {
    const auto bar = [](double v) {
      return std::string(static_cast<std::size_t>(v / 2.0 + 0.5), '#');
    };
    std::cout << util::format("  %-14s DAWO %-40s %.1f\n", run.name.c_str(),
                              bar(run.dawo.total_wash_time).c_str(),
                              run.dawo.total_wash_time);
    std::cout << util::format("  %-14s PDW  %-40s %.1f\n", "",
                              bar(run.pdw.total_wash_time).c_str(),
                              run.pdw.total_wash_time);
  }
  return 0;
}

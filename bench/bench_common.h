// Shared plumbing of the reproduction benches: run PDW and DAWO on every
// Table-II benchmark and collect the paper's metrics.
#pragma once

#include <string>
#include <vector>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "sim/metrics.h"
#include "sim/validator.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"

namespace pdw::bench {

/// Bench-wide PDW budgets: a few seconds per scheduling ILP, one second per
/// wash-path ILP (the paper ran a 15-minute Gurobi budget; these benches
/// demonstrate the same best-effort semantics at laptop scale).
inline core::PdwOptions defaultBenchOptions() {
  core::PdwOptions options;
  options.solver.schedule.time_limit_seconds = 4.0;
  options.solver.path.time_limit_seconds = 1.0;
  return options;
}

struct BenchmarkRun {
  std::string name;
  int ops = 0;
  int devices = 0;
  int edges = 0;
  double base_t_assay = 0.0;
  sim::WashMetrics dawo;
  sim::WashMetrics pdw;
  wash::WashPlanResult pdw_plan;   // for ablation detail
  wash::WashPlanResult dawo_plan;
  bool valid = false;
};

inline BenchmarkRun runBenchmark(
    assay::BenchmarkId id,
    const core::PdwOptions& options = defaultBenchOptions()) {
  BenchmarkRun run;
  assay::Benchmark b = assay::makeBenchmark(id);
  run.name = b.name;
  run.ops = b.graph->numOps();
  run.devices = arch::totalDevices(b.library);
  run.edges = b.graph->totalEdgeCount();

  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));
  run.base_t_assay = base.schedule.completionTime();

  run.pdw_plan = Pipeline(options).run(base.schedule).plan;
  run.dawo_plan = baseline::runDawo(base.schedule);
  run.pdw = sim::computeMetrics(run.pdw_plan.schedule, base.schedule);
  run.dawo = sim::computeMetrics(run.dawo_plan.schedule, base.schedule);

  sim::ValidatorOptions tol;
  tol.time_tol = 1e-4;
  run.valid = sim::validateSchedule(run.pdw_plan.schedule, tol).ok() &&
              sim::validateSchedule(run.dawo_plan.schedule, tol).ok();
  return run;
}

inline std::vector<BenchmarkRun> runAll(
    const core::PdwOptions& options = defaultBenchOptions()) {
  std::vector<BenchmarkRun> runs;
  for (assay::BenchmarkId id : assay::allBenchmarks())
    runs.push_back(runBenchmark(id, options));
  return runs;
}

}  // namespace pdw::bench

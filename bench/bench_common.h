// Shared plumbing of the reproduction benches: run PDW and DAWO on every
// Table-II benchmark and collect the paper's metrics, plus the common
// observability command-line surface (--trace-out / --metrics-out /
// --run-store / --label / --flight-out) every bench binary accepts.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "assay/benchmarks.h"
#include "baseline/dawo.h"
#include "core/pipeline.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/runs.h"
#include "obs/trace.h"
#include "sim/metrics.h"
#include "sim/validator.h"
#include "synth/placer.h"
#include "synth/synthesizer.h"

namespace pdw::bench {

/// The shared observability flags of the bench binaries. Usage:
///
///   ObsArgs obs_args;
///   for (int i = 1; i < argc; ++i)
///     if (!obs_args.consume(argc, argv, i)) ...bench-specific flags...
///   obs_args.applyStartup();
///   ...workload...
///   obs_args.finish();
///
/// `--run-store` appends `pdw-run-1` records (obs/runs.h); the bench fills
/// a RunRecord via makeRunRecord() and calls appendRunRecord().
struct ObsArgs {
  std::string trace_out;    ///< Chrome trace JSON path (enables tracing)
  std::string metrics_out;  ///< pdw-metrics-1 registry export path
  std::string run_store;    ///< pdw-run-1 JSONL store to append to
  std::string label = "default";  ///< record label inside the run store
  std::string flight_out;   ///< pdw-flight-1 JSONL path (dump every solve)

  /// Consume argv[i] when it is one of the shared flags (both `--flag=v`
  /// and `--flag v` spellings); returns false for bench-specific arguments.
  bool consume(int argc, char** argv, int& i) {
    const auto take = [&](const char* flag, std::string* out) {
      const std::size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) != 0) return false;
      if (argv[i][len] == '=') {
        *out = argv[i] + len + 1;
        return true;
      }
      if (argv[i][len] == '\0' && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    return take("--trace-out", &trace_out) ||
           take("--metrics-out", &metrics_out) ||
           take("--run-store", &run_store) || take("--label", &label) ||
           take("--flight-out", &flight_out);
  }

  /// Flight config for the solver stages when --flight-out was given
  /// (enabled, dump every solve); a disabled config otherwise.
  obs::FlightConfig flightConfig() const {
    obs::FlightConfig config;
    if (!flight_out.empty()) {
      config.enabled = true;
      config.path = flight_out;
      config.dump_all = true;
    }
    return config;
  }

  void applyStartup() const {
    if (!trace_out.empty()) obs::setTracingEnabled(true);
  }

  /// Write the trace / metrics exports after the workload ran.
  void finish() const {
    if (!trace_out.empty() && !obs::writeTraceJson(trace_out))
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
    if (!metrics_out.empty() &&
        !obs::Registry::instance().writeJson(metrics_out))
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out.c_str());
  }
};

/// A run record pre-stamped with everything environmental — label, bench
/// binary, timestamp, git SHA, build flags, current registry snapshot. The
/// caller fills `engine`, `config`, `quick` and the rows.
inline obs::RunRecord makeRunRecord(const ObsArgs& args,
                                    std::string bench_name) {
  obs::RunRecord record;
  record.label = args.label;
  record.bench = std::move(bench_name);
  record.timestamp = obs::timestampUtc();
  record.git_sha = obs::currentGitSha();
  record.build = obs::buildDescription();
  record.metrics = obs::Registry::instance().snapshot();
  return record;
}

/// Append `record` to the store named by --run-store (no-op without the
/// flag). Returns false only on I/O failure.
inline bool appendRunRecord(const ObsArgs& args,
                            const obs::RunRecord& record) {
  if (args.run_store.empty()) return true;
  const obs::RunStore store(args.run_store);
  if (!store.append(record)) {
    std::fprintf(stderr, "failed to append run record to %s\n",
                 args.run_store.c_str());
    return false;
  }
  std::fprintf(stderr, "run record '%s' appended to %s (%zu rows)\n",
               record.label.c_str(), args.run_store.c_str(),
               record.rows.size());
  return true;
}

/// Bench-wide PDW budgets: a few seconds per scheduling ILP, one second per
/// wash-path ILP (the paper ran a 15-minute Gurobi budget; these benches
/// demonstrate the same best-effort semantics at laptop scale).
inline core::PdwOptions defaultBenchOptions() {
  core::PdwOptions options;
  options.solver.schedule.time_limit_seconds = 4.0;
  options.solver.path.time_limit_seconds = 1.0;
  return options;
}

struct BenchmarkRun {
  std::string name;
  int ops = 0;
  int devices = 0;
  int edges = 0;
  double base_t_assay = 0.0;
  sim::WashMetrics dawo;
  sim::WashMetrics pdw;
  wash::WashPlanResult pdw_plan;   // for ablation detail
  wash::WashPlanResult dawo_plan;
  bool valid = false;
};

inline BenchmarkRun runBenchmark(
    assay::BenchmarkId id,
    const core::PdwOptions& options = defaultBenchOptions()) {
  BenchmarkRun run;
  assay::Benchmark b = assay::makeBenchmark(id);
  run.name = b.name;
  run.ops = b.graph->numOps();
  run.devices = arch::totalDevices(b.library);
  run.edges = b.graph->totalEdgeCount();

  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));
  run.base_t_assay = base.schedule.completionTime();

  run.pdw_plan = Pipeline(options).run(base.schedule).plan;
  run.dawo_plan = baseline::runDawo(base.schedule);
  run.pdw = sim::computeMetrics(run.pdw_plan.schedule, base.schedule);
  run.dawo = sim::computeMetrics(run.dawo_plan.schedule, base.schedule);

  sim::ValidatorOptions tol;
  tol.time_tol = 1e-4;
  run.valid = sim::validateSchedule(run.pdw_plan.schedule, tol).ok() &&
              sim::validateSchedule(run.dawo_plan.schedule, tol).ok();
  return run;
}

inline std::vector<BenchmarkRun> runAll(
    const core::PdwOptions& options = defaultBenchOptions()) {
  std::vector<BenchmarkRun> runs;
  for (assay::BenchmarkId id : assay::allBenchmarks())
    runs.push_back(runBenchmark(id, options));
  return runs;
}

}  // namespace pdw::bench

// Substrate bench: scaling behaviour of the from-scratch MILP solver that
// replaces Gurobi in this reproduction (google-benchmark microbenchmarks).
// Families: dense LPs, 0-1 knapsacks, and big-M disjunctive scheduling
// models (the structure of the paper's eqs. 3/8/19/20).
#include <benchmark/benchmark.h>

#include "ilp/solver.h"
#include "util/rng.h"

namespace {

using namespace pdw;

ilp::SolveParams benchParams() {
  ilp::SolveParams p;
  p.time_limit_seconds = 5.0;  // best-effort cap per solve
  p.log_progress = false;
  return p;
}

void BM_LpDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(42);
  ilp::Model model;
  std::vector<ilp::VarId> vars;
  for (int j = 0; j < n; ++j)
    vars.push_back(model.addContinuous(0, 10));
  for (int i = 0; i < n; ++i) {
    ilp::LinExpr row;
    for (int j = 0; j < n; ++j)
      row += (1.0 + rng.uniform()) * ilp::LinExpr(vars[
          static_cast<std::size_t>(j)]);
    model.addLessEqual(row, 5.0 * n);
  }
  ilp::LinExpr objective;
  for (ilp::VarId v : vars) objective += -1.0 * ilp::LinExpr(v);
  model.setObjective(objective);

  for (auto _ : state) {
    ilp::Solution s = ilp::solve(model, benchParams());
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_LpDense)->Arg(10)->Arg(25)->Arg(50)->Arg(100);

void BM_MipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(7);
  ilp::Model model;
  ilp::LinExpr weight, value;
  double capacity = 0;
  for (int j = 0; j < n; ++j) {
    const ilp::VarId v = model.addBinary();
    const double w = rng.intIn(1, 20);
    weight += w * ilp::LinExpr(v);
    value += rng.intIn(1, 30) * ilp::LinExpr(v);
    capacity += w;
  }
  model.addLessEqual(weight, capacity * 0.4);
  model.setObjective(-1.0 * value);

  for (auto _ : state) {
    ilp::Solution s = ilp::solve(model, benchParams());
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(15)->Arg(20)->Arg(30);

void BM_MipDisjunctiveScheduling(benchmark::State& state) {
  // n tasks on one resource: the big-M structure of the paper's
  // conflict-serialization constraints.
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(13);
  constexpr double kBigM = 1000.0;
  ilp::Model model;
  std::vector<ilp::VarId> start;
  std::vector<double> duration;
  const ilp::VarId makespan = model.addContinuous(0, kBigM);
  for (int i = 0; i < n; ++i) {
    start.push_back(model.addContinuous(0, kBigM));
    duration.push_back(rng.intIn(1, 6));
    model.addGreaterEqual(ilp::LinExpr(makespan) -
                              ilp::LinExpr(start.back()),
                          duration.back());
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const ilp::VarId order = model.addBinary();
      model.addGreaterEqual(
          ilp::LinExpr(start[static_cast<std::size_t>(j)]) -
              ilp::LinExpr(start[static_cast<std::size_t>(i)]) +
              kBigM * ilp::LinExpr(order),
          duration[static_cast<std::size_t>(i)]);
      model.addGreaterEqual(
          ilp::LinExpr(start[static_cast<std::size_t>(i)]) -
              ilp::LinExpr(start[static_cast<std::size_t>(j)]) -
              kBigM * ilp::LinExpr(order),
          duration[static_cast<std::size_t>(j)] - kBigM);
    }
  model.setObjective(ilp::LinExpr(makespan));

  for (auto _ : state) {
    ilp::Solution s = ilp::solve(model, benchParams());
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_MipDisjunctiveScheduling)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

}  // namespace

BENCHMARK_MAIN();

// Substrate bench: scaling behaviour of the from-scratch MILP solver that
// replaces Gurobi in this reproduction.
//
// Two modes:
//  * google-benchmark microbenchmarks (default): dense LPs, 0-1 knapsacks,
//    and big-M disjunctive scheduling models (the structure of the paper's
//    eqs. 3/8/19/20).
//  * --json-out=<path>: one timed solve per instance plus the Table-II
//    pipeline benchmarks, emitting a `pdw-bench-1` JSON document with
//    per-benchmark wall time, node counts, simplex iterations and the
//    warm-dual hit rate. scripts/tier1.sh validates the document with
//    tools/obs_check; BENCH_ilp.json at the repo root holds the committed
//    perf baseline this series is measured against.
//
//      bench_ilp_solver --json-out=out.json [--quick] [--label=NAME]
//                       [--no-cuts]   # pre-cuts solver config (baselines)
//
// Both modes additionally accept the shared observability flags
// (bench_common.h): --run-store=FILE appends a `pdw-run-1` record for
// tools/pdw_report, --trace-out / --metrics-out export the trace and the
// metrics registry, --flight-out dumps every solve's flight recording.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "assay/benchmarks.h"
#include "bench_common.h"
#include "core/pipeline.h"
#include "ilp/lp_backend.h"
#include "ilp/solver.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace pdw;

/// LP backend under measurement ("" = library default). Set by --engine;
/// stamped into the pdw-bench-1 document so baselines are comparable only
/// within one engine.
std::string g_engine;  // NOLINT(runtime/string)

/// Flight-recorder config applied to every measured solve (disabled unless
/// --flight-out was given).
obs::FlightConfig g_flight;

/// --no-cuts: run every solve with the pre-cuts solver configuration (root
/// cutting planes, probing presolve, coefficient tightening and pseudocost
/// branching all off). Used to record the frozen "pre-cuts" baseline label
/// the cut series is measured against.
bool g_no_cuts = false;

void applyPreCuts(ilp::SolveParams* p) {
  p->cuts.enabled = false;
  p->probing = false;
  p->coef_tightening = false;
  p->branch_rule = ilp::BranchRule::MostFractional;
}

ilp::SolveParams benchParams() {
  ilp::SolveParams p;
  p.engine = g_engine;
  p.time_limit_seconds = 5.0;  // best-effort cap per solve
  p.log_progress = false;
  p.flight = g_flight;
  if (g_no_cuts) applyPreCuts(&p);
  return p;
}

// ---- shared model builders (used by both modes) --------------------------

ilp::Model makeLpDense(int n) {
  util::Rng rng(42);
  ilp::Model model;
  std::vector<ilp::VarId> vars;
  for (int j = 0; j < n; ++j)
    vars.push_back(model.addContinuous(0, 10));
  for (int i = 0; i < n; ++i) {
    ilp::LinExpr row;
    for (int j = 0; j < n; ++j)
      row += (1.0 + rng.uniform()) *
             ilp::LinExpr(vars[static_cast<std::size_t>(j)]);
    model.addLessEqual(row, 5.0 * n);
  }
  ilp::LinExpr objective;
  for (ilp::VarId v : vars) objective += -1.0 * ilp::LinExpr(v);
  model.setObjective(objective);
  return model;
}

ilp::Model makeKnapsack(int n) {
  util::Rng rng(7);
  ilp::Model model;
  ilp::LinExpr weight, value;
  double capacity = 0;
  for (int j = 0; j < n; ++j) {
    const ilp::VarId v = model.addBinary();
    const double w = rng.intIn(1, 20);
    weight += w * ilp::LinExpr(v);
    value += rng.intIn(1, 30) * ilp::LinExpr(v);
    capacity += w;
  }
  model.addLessEqual(weight, capacity * 0.4);
  model.setObjective(-1.0 * value);
  return model;
}

ilp::Model makeDisjunctiveScheduling(int n) {
  // n tasks on one resource: the big-M structure of the paper's
  // conflict-serialization constraints.
  util::Rng rng(13);
  constexpr double kBigM = 1000.0;
  ilp::Model model;
  std::vector<ilp::VarId> start;
  std::vector<double> duration;
  const ilp::VarId makespan = model.addContinuous(0, kBigM);
  for (int i = 0; i < n; ++i) {
    start.push_back(model.addContinuous(0, kBigM));
    duration.push_back(rng.intIn(1, 6));
    model.addGreaterEqual(
        ilp::LinExpr(makespan) - ilp::LinExpr(start.back()), duration.back());
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const ilp::VarId order = model.addBinary();
      model.addGreaterEqual(
          ilp::LinExpr(start[static_cast<std::size_t>(j)]) -
              ilp::LinExpr(start[static_cast<std::size_t>(i)]) +
              kBigM * ilp::LinExpr(order),
          duration[static_cast<std::size_t>(i)]);
      model.addGreaterEqual(
          ilp::LinExpr(start[static_cast<std::size_t>(i)]) -
              ilp::LinExpr(start[static_cast<std::size_t>(j)]) -
              kBigM * ilp::LinExpr(order),
          duration[static_cast<std::size_t>(j)] - kBigM);
    }
  model.setObjective(ilp::LinExpr(makespan));
  return model;
}

// ---- google-benchmark mode ----------------------------------------------

void BM_LpDense(benchmark::State& state) {
  const ilp::Model model = makeLpDense(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ilp::Solution s = ilp::solve(model, benchParams());
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_LpDense)->Arg(10)->Arg(25)->Arg(50)->Arg(100);

void BM_MipKnapsack(benchmark::State& state) {
  const ilp::Model model = makeKnapsack(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ilp::Solution s = ilp::solve(model, benchParams());
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(15)->Arg(20)->Arg(30);

void BM_MipDisjunctiveScheduling(benchmark::State& state) {
  const ilp::Model model =
      makeDisjunctiveScheduling(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ilp::Solution s = ilp::solve(model, benchParams());
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_MipDisjunctiveScheduling)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

// ---- --json-out mode -----------------------------------------------------

/// One row of the pdw-bench-1 document.
struct BenchRecord {
  std::string name;
  std::string family;  // "synthetic" | "pipeline"
  double wall_seconds = 0.0;
  std::int64_t mip_solves = 0;
  std::int64_t nodes = 0;
  std::int64_t simplex_iterations = 0;
  std::int64_t warm_hits = 0;
  std::int64_t warm_misses = 0;
  std::int64_t dual_pivots = 0;
  std::int64_t rc_fixed = 0;

  double warmHitRate() const {
    const std::int64_t tried = warm_hits + warm_misses;
    return tried > 0 ? static_cast<double>(warm_hits) /
                           static_cast<double>(tried)
                     : 0.0;
  }
};

BenchRecord runSynthetic(const std::string& name, const ilp::Model& model) {
  BenchRecord rec;
  rec.name = name;
  rec.family = "synthetic";
  const auto start = std::chrono::steady_clock::now();
  const ilp::Solution s = ilp::solve(model, benchParams());
  rec.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  rec.mip_solves = 1;
  rec.nodes = s.stats.nodes_explored;
  rec.simplex_iterations = s.stats.simplex_iterations;
  rec.warm_hits = s.stats.warm_hits;
  rec.warm_misses = s.stats.warm_misses;
  rec.dual_pivots = s.stats.dual_pivots;
  rec.rc_fixed = s.stats.rc_fixed;
  return rec;
}

/// Run one Table-II benchmark through the full single-threaded pipeline and
/// charge the per-run `ilp.*` registry delta to the record — this covers
/// every MIP the stage solvers issue (schedule phases A/B + path ILPs).
BenchRecord runPipelineBenchmark(assay::BenchmarkId id) {
  obs::Registry& reg = obs::Registry::instance();
  const obs::MetricsSnapshot before = reg.snapshot();

  assay::Benchmark b = assay::makeBenchmark(id);
  synth::SynthResult base =
      synth::synthesizeOnChip(*b.graph, synth::placeChip(b.library));
  core::PdwOptions options = bench::defaultBenchOptions();
  options.withEngine(g_engine);
  options.solver.schedule.flight = g_flight;
  options.solver.path.flight = g_flight;
  if (g_no_cuts) {
    applyPreCuts(&options.solver.schedule);
    applyPreCuts(&options.solver.path);
  }
  options.num_threads = 1;  // sequential: canonical-lane solver numbers only
  Pipeline pipeline(options);
  const PdwResult result = pipeline.run(base.schedule);

  const obs::MetricsSnapshot delta = reg.snapshot().since(before);
  BenchRecord rec;
  rec.name = "table2_" + b.name;
  rec.family = "pipeline";
  rec.wall_seconds = result.timings.total_s;
  rec.mip_solves = delta.counter("ilp.bb.solves");
  rec.nodes = delta.counter("ilp.bb.nodes");
  rec.simplex_iterations = delta.counter("ilp.simplex.iterations");
  rec.warm_hits = delta.counter("ilp.simplex.warm_hits");
  rec.warm_misses = delta.counter("ilp.simplex.warm_misses");
  rec.dual_pivots = delta.counter("ilp.simplex.dual_pivots");
  rec.rc_fixed = delta.counter("ilp.bb.rc_fixed");
  return rec;
}

void appendRecord(std::ostringstream& out, const BenchRecord& r, bool first) {
  if (!first) out << ",\n";
  out << "    {\"name\": " << obs::json::quote(r.name)
      << ", \"family\": " << obs::json::quote(r.family)
      << ", \"wall_seconds\": " << r.wall_seconds
      << ", \"mip_solves\": " << r.mip_solves << ", \"nodes\": " << r.nodes
      << ", \"simplex_iterations\": " << r.simplex_iterations
      << ", \"warm_hits\": " << r.warm_hits
      << ", \"warm_misses\": " << r.warm_misses
      << ", \"dual_pivots\": " << r.dual_pivots
      << ", \"rc_fixed\": " << r.rc_fixed
      << ", \"warm_hit_rate\": " << r.warmHitRate() << "}";
}

int runJsonMode(const std::string& path, const bench::ObsArgs& obs_args,
                bool quick) {
  const std::string& label = obs_args.label;
  std::vector<BenchRecord> records;

  const std::vector<std::pair<std::string, ilp::Model>> synthetic = [&] {
    std::vector<std::pair<std::string, ilp::Model>> suite;
    suite.emplace_back("lp_dense_50", makeLpDense(50));
    suite.emplace_back("knapsack_20", makeKnapsack(20));
    if (!quick) {
      suite.emplace_back("lp_dense_100", makeLpDense(100));
      // The lp_dense_1000 family is the revised backend's headline: the
      // dense tableau cannot finish these within the per-solve budget.
      suite.emplace_back("lp_dense_300", makeLpDense(300));
      suite.emplace_back("lp_dense_1000", makeLpDense(1000));
      suite.emplace_back("knapsack_30", makeKnapsack(30));
      suite.emplace_back("disjunctive_5", makeDisjunctiveScheduling(5));
      suite.emplace_back("disjunctive_6", makeDisjunctiveScheduling(6));
    } else {
      suite.emplace_back("disjunctive_4", makeDisjunctiveScheduling(4));
    }
    return suite;
  }();
  for (const auto& [name, model] : synthetic) {
    std::fprintf(stderr, "bench_ilp_solver: %s\n", name.c_str());
    records.push_back(runSynthetic(name, model));
  }

  std::vector<assay::BenchmarkId> table2 = assay::allBenchmarks();
  if (quick && table2.size() > 2) table2.resize(2);
  for (assay::BenchmarkId id : table2) {
    BenchRecord rec = runPipelineBenchmark(id);
    std::fprintf(stderr, "bench_ilp_solver: %s\n", rec.name.c_str());
    records.push_back(std::move(rec));
  }

  BenchRecord totals;
  for (const BenchRecord& r : records) {
    totals.wall_seconds += r.wall_seconds;
    totals.mip_solves += r.mip_solves;
    totals.nodes += r.nodes;
    totals.simplex_iterations += r.simplex_iterations;
    totals.warm_hits += r.warm_hits;
    totals.warm_misses += r.warm_misses;
    totals.dual_pivots += r.dual_pivots;
    totals.rc_fixed += r.rc_fixed;
  }

  const std::string engine =
      g_engine.empty() ? ilp::defaultLpBackendName() : g_engine;

  // --run-store: append one pdw-run-1 record carrying the same rows (plus
  // the environment stamps and the registry snapshot) to the durable store.
  if (!obs_args.run_store.empty()) {
    obs::RunRecord record = bench::makeRunRecord(obs_args, "bench_ilp_solver");
    record.engine = engine;
    record.config = ilp::fingerprint(benchParams());
    record.quick = quick;
    for (const BenchRecord& r : records) {
      obs::RunRow row;
      row.name = r.name;
      row.family = r.family;
      row.values = {
          {"wall_seconds", r.wall_seconds},
          {"mip_solves", static_cast<double>(r.mip_solves)},
          {"nodes", static_cast<double>(r.nodes)},
          {"simplex_iterations", static_cast<double>(r.simplex_iterations)},
          {"warm_hits", static_cast<double>(r.warm_hits)},
          {"warm_misses", static_cast<double>(r.warm_misses)},
          {"dual_pivots", static_cast<double>(r.dual_pivots)},
          {"rc_fixed", static_cast<double>(r.rc_fixed)},
          {"warm_hit_rate", r.warmHitRate()},
      };
      record.rows.push_back(std::move(row));
    }
    if (!bench::appendRunRecord(obs_args, record)) return 1;
  }
  if (path.empty()) return 0;

  std::ostringstream out;
  out << "{\n  \"schema\": \"pdw-bench-1\",\n  \"label\": "
      << obs::json::quote(label) << ",\n  \"engine\": "
      << obs::json::quote(engine) << ",\n  \"quick\": "
      << (quick ? "true" : "false") << ",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i)
    appendRecord(out, records[i], i == 0);
  out << "\n  ],\n  \"totals\": {\"wall_seconds\": " << totals.wall_seconds
      << ", \"mip_solves\": " << totals.mip_solves
      << ", \"nodes\": " << totals.nodes
      << ", \"simplex_iterations\": " << totals.simplex_iterations
      << ", \"warm_hits\": " << totals.warm_hits
      << ", \"warm_misses\": " << totals.warm_misses
      << ", \"dual_pivots\": " << totals.dual_pivots
      << ", \"rc_fixed\": " << totals.rc_fixed
      << ", \"warm_hit_rate\": " << totals.warmHitRate() << "}\n}\n";

  std::ofstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "bench_ilp_solver: cannot write %s\n", path.c_str());
    return 1;
  }
  file << out.str();
  std::fprintf(stderr,
               "bench_ilp_solver: wrote %s (%zu benchmarks, %lld iterations, "
               "warm-hit rate %.2f)\n",
               path.c_str(), records.size(),
               static_cast<long long>(totals.simplex_iterations),
               totals.warmHitRate());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_out;
  bool quick = false;
  bench::ObsArgs obs_args;
  std::vector<char*> bench_args{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs_args.consume(argc, argv, i)) continue;
    if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(std::strlen("--json-out="));
    } else if (arg == "--json-out" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (arg.rfind("--engine=", 0) == 0) {
      g_engine = arg.substr(std::strlen("--engine="));
    } else if (arg == "--engine" && i + 1 < argc) {
      g_engine = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--no-cuts") {
      g_no_cuts = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  g_flight = obs_args.flightConfig();
  obs_args.applyStartup();
  if (!json_out.empty() || !obs_args.run_store.empty()) {
    const int rc = runJsonMode(json_out, obs_args, quick);
    obs_args.finish();
    return rc;
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  obs_args.finish();
  return 0;
}

// Reproduces Table II of the paper: DAWO vs PathDriver-Wash on the eight
// benchmarks — N_wash, L_wash (mm), T_delay (s), T_assay (s) with per-row
// improvement percentages and column averages.
//
// Absolute values come from our synthesis substrate (paper: closed-source
// PathDriver+ schedules on the authors' testbed); the comparison shape —
// PDW dominating or tying DAWO on every metric of every row — is the
// reproduction target (see EXPERIMENTS.md).
// Accepts the shared observability flags (bench_common.h): --run-store=FILE
// appends one `pdw-run-1` record with the PDW columns of every row,
// --trace-out / --metrics-out export the trace and the metrics registry,
// --flight-out dumps the solver lanes' flight recordings.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "ilp/lp_backend.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace pdw;
  using util::fixed;
  using util::improvementPercent;

  bench::ObsArgs obs_args;
  for (int i = 1; i < argc; ++i) {
    if (!obs_args.consume(argc, argv, i)) {
      std::fprintf(stderr, "bench_table2: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  obs_args.applyStartup();

  core::PdwOptions options = bench::defaultBenchOptions();
  options.solver.schedule.flight = obs_args.flightConfig();
  options.solver.path.flight = options.solver.schedule.flight;

  std::vector<bench::BenchmarkRun> runs = bench::runAll(options);

  util::Table table({"Benchmark", "|O|/|D|/|E|", "Nw DAWO", "Nw PDW",
                     "Nw Im%", "Lw DAWO", "Lw PDW", "Lw Im%", "Td DAWO",
                     "Td PDW", "Td Im%", "Ta DAWO", "Ta PDW", "Ta Im%"});
  table.setTitle(
      "Table II: Comparison between PathDriver-Wash (PDW) and DAWO "
      "(N_wash / L_wash mm / T_delay s / T_assay s)");

  double sum_n = 0, sum_l = 0, sum_d = 0, sum_a = 0;
  int rows = 0;
  bool all_valid = true;
  for (const bench::BenchmarkRun& run : runs) {
    const auto& d = run.dawo;
    const auto& p = run.pdw;
    table.addRow({run.name,
                  util::format("%d/%d/%d", run.ops, run.devices, run.edges),
                  util::format("%d", d.n_wash), util::format("%d", p.n_wash),
                  improvementPercent(d.n_wash, p.n_wash),
                  fixed(d.l_wash_mm, 0), fixed(p.l_wash_mm, 0),
                  improvementPercent(d.l_wash_mm, p.l_wash_mm),
                  fixed(d.t_delay, 0), fixed(p.t_delay, 0),
                  improvementPercent(d.t_delay, p.t_delay),
                  fixed(d.t_assay, 0), fixed(p.t_assay, 0),
                  improvementPercent(d.t_assay, p.t_assay)});
    sum_n += d.n_wash > 0 ? (d.n_wash - p.n_wash) / double(d.n_wash) : 0;
    sum_l += d.l_wash_mm > 0 ? (d.l_wash_mm - p.l_wash_mm) / d.l_wash_mm : 0;
    sum_d += d.t_delay > 0 ? (d.t_delay - p.t_delay) / d.t_delay : 0;
    sum_a += d.t_assay > 0 ? (d.t_assay - p.t_assay) / d.t_assay : 0;
    ++rows;
    all_valid = all_valid && run.valid;
  }
  table.addSeparator();
  table.addRow({"Average", "-", "-", "-", fixed(100.0 * sum_n / rows, 2),
                "-", "-", fixed(100.0 * sum_l / rows, 2), "-", "-",
                fixed(100.0 * sum_d / rows, 2), "-", "-",
                fixed(100.0 * sum_a / rows, 2)});
  table.render(std::cout);

  std::cout << "\nPaper averages for reference: N_wash 17.73%, L_wash "
               "24.56%, T_delay 33.10%, T_assay 9.28%\n";
  std::cout << "All schedules validator-clean: " << (all_valid ? "yes" : "NO")
            << "\n";

  if (!obs_args.run_store.empty()) {
    obs::RunRecord record = bench::makeRunRecord(obs_args, "bench_table2");
    record.engine = options.solver.engine.empty()
                        ? ilp::defaultLpBackendName()
                        : options.solver.engine;
    record.config = options.solver.fingerprint();
    for (const bench::BenchmarkRun& run : runs) {
      obs::RunRow row;
      row.name = run.name;
      row.family = "table2";
      row.values = {
          {"n_wash", static_cast<double>(run.pdw.n_wash)},
          {"l_wash_mm", run.pdw.l_wash_mm},
          {"t_delay_s", run.pdw.t_delay},
          {"t_assay_s", run.pdw.t_assay},
      };
      record.rows.push_back(std::move(row));
    }
    if (!bench::appendRunRecord(obs_args, record)) return 1;
  }
  obs_args.finish();
  return all_valid ? 0 : 1;
}

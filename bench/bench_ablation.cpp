// Ablation study of PDW's three key techniques (DESIGN.md experiment index):
//   A1  full PDW (reference)
//   A2  no Type-1 exemption   (wash dead residue too)
//   A3  no Type-2 exemption   (wash same-fluid reuse too)
//   A4  no Type-3 exemption   (wash before waste-bound flushes too)
//   A5  no removal integration (psi forced to 0)
//   A6  heuristic wash paths  (BFS instead of the eq. 12-15 ILP)
//   A7  greedy insertion      (no scheduling ILP)
// Reported per variant, averaged over the eight benchmarks: N_wash,
// L_wash, T_delay, T_assay.
#include <iostream>

#include "bench_common.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

struct Variant {
  const char* id;
  const char* what;
  pdw::core::PdwOptions options;
};

}  // namespace

int main() {
  using namespace pdw;

  // Tighter per-stage budgets than the headline benches: 7 variants x 8
  // benchmarks; the comparison is relative across variants.
  core::PdwOptions base_options;
  base_options.solver.schedule.time_limit_seconds = 2.0;
  base_options.solver.path.time_limit_seconds = 0.5;

  std::vector<Variant> variants;
  {
    Variant v{"A1", "full PDW", base_options};
    variants.push_back(v);
  }
  {
    Variant v{"A2", "no Type-1 exemption", base_options};
    v.options.necessity.enable_type1 = false;
    variants.push_back(v);
  }
  {
    Variant v{"A3", "no Type-2 exemption", base_options};
    v.options.necessity.enable_type2 = false;
    variants.push_back(v);
  }
  {
    Variant v{"A4", "no Type-3 exemption", base_options};
    v.options.necessity.enable_type3 = false;
    variants.push_back(v);
  }
  {
    Variant v{"A5", "no removal integration", base_options};
    v.options.enable_integration = false;
    variants.push_back(v);
  }
  {
    Variant v{"A6", "BFS wash paths (no path ILP)", base_options};
    v.options.use_ilp_paths = false;
    variants.push_back(v);
  }
  {
    Variant v{"A7", "greedy insertion (no scheduling ILP)", base_options};
    v.options.use_ilp_schedule = false;
    variants.push_back(v);
  }

  util::Table table({"Variant", "Description", "N_wash", "L_wash (mm)",
                     "T_delay (s)", "T_assay (s)", "integrated"});
  table.setTitle("Ablation: average over the eight Table-II benchmarks");

  for (const Variant& variant : variants) {
    double n = 0, l = 0, d = 0, a = 0, integ = 0;
    int rows = 0;
    for (assay::BenchmarkId id : assay::allBenchmarks()) {
      const bench::BenchmarkRun run = bench::runBenchmark(id,
                                                          variant.options);
      n += run.pdw.n_wash;
      l += run.pdw.l_wash_mm;
      d += run.pdw.t_delay;
      a += run.pdw.t_assay;
      integ += run.pdw_plan.integrated_removals;
      ++rows;
    }
    table.addRow({variant.id, variant.what, util::fixed(n / rows, 2),
                  util::fixed(l / rows, 0), util::fixed(d / rows, 2),
                  util::fixed(a / rows, 1), util::fixed(integ / rows, 2)});
  }
  table.render(std::cout);
  std::cout << "\nReading: A2-A4 quantify the wash-necessity analysis "
               "(more washes / longer delay when an exemption is off);\n"
               "A5 isolates the excess-removal integration; A6/A7 isolate "
               "the two ILP stages vs their heuristics.\n";
  return 0;
}

// bench_rewash — perturbation-replay load generator for incremental
// re-wash (Pipeline::resolve(delta)).
//
//   bench_rewash [--quick] [--deltas N] [--budget S] [--json-out FILE]
//                [--expect-speedup X] [--run-store FILE] [--label NAME]
//                [--metrics-out FILE] [--trace-out FILE]
//
// For each Table-II benchmark (--quick: the three that prove optimality in
// ~a second), solves the base schedule once to prime a resident pipeline,
// then replays a seeded stream of `--deltas` schedule perturbations
// (op/task delays from an LCG — deterministic, so a failure replays from
// the benchmark name and delta index alone). Every perturbation is solved
// twice:
//
//   delta  Pipeline::resolve() against the resident pipeline — frontier
//          necessity recompute, route-cache reuse, repair-mode MILP
//   cold   a fresh Pipeline::run() of the byte-identical perturbed
//          schedule — the from-scratch re-solve the paper's offline flow
//          would do
//
// N_wash must agree between the two on every delta (wash count is decided
// by necessity + clustering, not by how the scheduling MILP spends its
// budget); any mismatch is a correctness failure and fails the run.
// Reports per-benchmark and overall cold vs delta p50/p99 latency and
// simplex-iteration totals, emits a `pdw-bench-1` document (--json-out)
// and run-store rows (--run-store/--label) for pdw_report gating. Row
// metrics, all lower-is-better:
//   wall_seconds      total solve wall time of the row's benchmark
//   cold_p50_ms       from-scratch re-solve latency
//   delta_p50_ms / delta_p99_ms
//   delta_iter_share  delta-path simplex iterations over cold-path ones
//                     (the ISSUE's >= 5x reduction gate at <= 0.2)
//
// --expect-speedup X fails the run unless the overall cold/delta p50 ratio
// OR the cold/delta iteration ratio reaches X.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/schedule_delta.h"
#include "obs/json.h"

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

std::int64_t simplexIterations() {
  return pdw::obs::Registry::instance().snapshot().counter(
      "ilp.simplex.iterations");
}

int usage() {
  std::fprintf(
      stderr,
      "usage: bench_rewash [--quick] [--deltas N] [--budget S]\n"
      "                    [--json-out FILE] [--expect-speedup X]\n"
      "                    [--run-store FILE] [--label NAME]\n"
      "                    [--metrics-out FILE] [--trace-out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pdw::bench::ObsArgs obs_args;
  bool quick = false;
  int deltas = 4;
  double budget_s = 0.0;  // 0: bench default (4 s schedule / 1 s path)
  double expect_speedup = -1.0;
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    if (obs_args.consume(argc, argv, i)) continue;
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (arg != flag) return nullptr;
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      quick = true;
    } else if (const char* v = value("--deltas")) {
      deltas = std::atoi(v);
    } else if (const char* v = value("--budget")) {
      budget_s = std::atof(v);
    } else if (const char* v = value("--json-out")) {
      json_out = v;
    } else if (const char* v = value("--expect-speedup")) {
      expect_speedup = std::atof(v);
    } else {
      return usage();
    }
  }
  deltas = std::max(1, deltas);
  obs_args.applyStartup();

  std::vector<pdw::assay::BenchmarkId> mix;
  for (pdw::assay::BenchmarkId id : pdw::assay::allBenchmarks())
    mix.push_back(id);
  if (quick)
    mix = {pdw::assay::BenchmarkId::Pcr, pdw::assay::BenchmarkId::KinaseAct1,
           pdw::assay::BenchmarkId::Synthetic1};

  pdw::core::PdwOptions options = pdw::bench::defaultBenchOptions();
  if (budget_s > 0.0) options.solver.schedule.time_limit_seconds = budget_s;

  struct Row {
    double wall_s = 0.0;
    std::vector<double> cold_ms, delta_ms;
    std::int64_t cold_iters = 0, delta_iters = 0;
    int mismatches = 0, invalid = 0;
  };
  std::map<std::string, Row> rows;
  int failures = 0;

  for (pdw::assay::BenchmarkId id : mix) {
    pdw::assay::Benchmark b = pdw::assay::makeBenchmark(id);
    pdw::synth::SynthResult base = pdw::synth::synthesizeOnChip(
        *b.graph, pdw::synth::placeChip(b.library));
    Row& row = rows[b.name];

    pdw::Pipeline resident(options);
    resident.run(base.schedule);

    // Seeded per-benchmark LCG: the stream replays from (name, index).
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    for (const char c : b.name) state = state * 31 + static_cast<unsigned char>(c);
    const auto next = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<std::uint32_t>(state >> 33);
    };

    pdw::assay::AssaySchedule current = base.schedule;
    const int num_ops = static_cast<int>(current.opSchedules().size());
    const int num_tasks = static_cast<int>(current.tasks().size());
    for (int d = 0; d < deltas; ++d) {
      pdw::core::ScheduleDelta delta;
      const double seconds = 0.5 + static_cast<double>(next() % 20) * 0.25;
      if (d % 2 == 0 && num_ops > 0)
        delta.op_delays.push_back(
            {static_cast<pdw::assay::OpId>(next() % num_ops), seconds});
      else
        delta.task_delays.push_back(
            {static_cast<pdw::assay::TaskId>(next() % num_tasks), seconds});

      pdw::core::AppliedDelta applied = pdw::core::applyDelta(current, delta);
      if (!applied.valid) {
        std::fprintf(stderr, "bench_rewash: %s delta %d invalid: %s\n",
                     b.name.c_str(), d, applied.error.c_str());
        ++row.invalid;
        ++failures;
        continue;
      }

      std::int64_t iters = simplexIterations();
      auto t0 = std::chrono::steady_clock::now();
      const pdw::PdwResult warm = resident.resolve(delta);
      const double warm_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      row.delta_iters += simplexIterations() - iters;
      if (!warm.resolve.valid) {
        std::fprintf(stderr, "bench_rewash: %s delta %d rejected: %s\n",
                     b.name.c_str(), d, warm.resolve.error.c_str());
        ++row.invalid;
        ++failures;
        continue;
      }

      iters = simplexIterations();
      t0 = std::chrono::steady_clock::now();
      const pdw::PdwResult cold =
          pdw::Pipeline(options).run(applied.schedule);
      const double cold_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      row.cold_iters += simplexIterations() - iters;

      row.delta_ms.push_back(warm_ms);
      row.cold_ms.push_back(cold_ms);
      row.wall_s += (warm_ms + cold_ms) / 1000.0;
      const int n_warm = warm.schedule().washCount();
      const int n_cold = cold.schedule().washCount();
      if (n_warm != n_cold) {
        std::fprintf(stderr,
                     "bench_rewash: FAIL %s delta %d: resolve N_wash %d != "
                     "cold re-solve N_wash %d\n",
                     b.name.c_str(), d, n_warm, n_cold);
        ++row.mismatches;
        ++failures;
      }
      current = std::move(applied.schedule);
    }
  }

  // Aggregate and report.
  std::vector<double> cold_all, delta_all;
  std::int64_t cold_iters = 0, delta_iters = 0;
  double total_wall = 0.0;
  for (const auto& [name, row] : rows) {
    cold_all.insert(cold_all.end(), row.cold_ms.begin(), row.cold_ms.end());
    delta_all.insert(delta_all.end(), row.delta_ms.begin(),
                     row.delta_ms.end());
    cold_iters += row.cold_iters;
    delta_iters += row.delta_iters;
    total_wall += row.wall_s;
  }
  const double cold_p50 = percentile(cold_all, 50);
  const double delta_p50 = percentile(delta_all, 50);
  const double latency_ratio = delta_p50 > 0.0 ? cold_p50 / delta_p50 : 0.0;
  const double iter_ratio =
      delta_iters > 0 ? static_cast<double>(cold_iters) /
                            static_cast<double>(delta_iters)
                      : 0.0;

  std::printf("bench_rewash: %zu benchmarks x %d deltas%s\n", rows.size(),
              deltas, quick ? " (quick)" : "");
  std::printf("  %-14s %11s %12s %12s %11s %11s\n", "benchmark",
              "cold_p50_ms", "delta_p50_ms", "delta_p99_ms", "cold_iters",
              "delta_iters");
  for (const auto& [name, row] : rows)
    std::printf("  %-14s %11.1f %12.2f %12.2f %11lld %11lld\n", name.c_str(),
                percentile(row.cold_ms, 50), percentile(row.delta_ms, 50),
                percentile(row.delta_ms, 99),
                static_cast<long long>(row.cold_iters),
                static_cast<long long>(row.delta_iters));
  std::printf(
      "  overall: cold p50 %.1f ms, delta p50 %.2f ms (%.1fx), simplex "
      "iterations %lld vs %lld (%.1fx)\n",
      cold_p50, delta_p50, latency_ratio, static_cast<long long>(cold_iters),
      static_cast<long long>(delta_iters), iter_ratio);

  std::ostringstream doc;
  doc << "{\"schema\":\"pdw-bench-1\",\"bench\":\"bench_rewash\",\"quick\":"
      << (quick ? "true" : "false") << ",\"deltas\":" << deltas
      << ",\"benchmarks\":[";
  bool first = true;
  for (const auto& [name, row] : rows) {
    if (!first) doc << ",";
    first = false;
    const double share =
        row.cold_iters > 0 ? static_cast<double>(row.delta_iters) /
                                 static_cast<double>(row.cold_iters)
                           : 0.0;
    doc << "{\"name\":" << pdw::obs::json::quote(name)
        << ",\"wall_seconds\":" << row.wall_s
        << ",\"cold_p50_ms\":" << percentile(row.cold_ms, 50)
        << ",\"delta_p50_ms\":" << percentile(row.delta_ms, 50)
        << ",\"delta_p99_ms\":" << percentile(row.delta_ms, 99)
        << ",\"delta_iter_share\":" << share
        << ",\"nwash_mismatches\":" << row.mismatches << "}";
  }
  doc << "],\"totals\":{\"wall_seconds\":" << total_wall
      << ",\"latency_ratio\":" << latency_ratio
      << ",\"iteration_ratio\":" << iter_ratio << "}}";
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << doc.str() << "\n";
    if (!out)
      std::fprintf(stderr, "bench_rewash: failed to write %s\n",
                   json_out.c_str());
  }

  if (!obs_args.run_store.empty()) {
    pdw::obs::RunRecord record =
        pdw::bench::makeRunRecord(obs_args, "bench_rewash");
    record.quick = quick;
    record.config = "deltas=" + std::to_string(deltas);
    for (const auto& [name, row] : rows) {
      pdw::obs::RunRow run_row;
      run_row.name = name;
      run_row.family = "rewash";
      run_row.values["wall_seconds"] = row.wall_s;
      run_row.values["cold_p50_ms"] = percentile(row.cold_ms, 50);
      run_row.values["delta_p50_ms"] = percentile(row.delta_ms, 50);
      run_row.values["delta_p99_ms"] = percentile(row.delta_ms, 99);
      run_row.values["delta_iter_share"] =
          row.cold_iters > 0 ? static_cast<double>(row.delta_iters) /
                                   static_cast<double>(row.cold_iters)
                             : 0.0;
      run_row.values["nwash_mismatches"] = static_cast<double>(row.mismatches);
      record.rows.push_back(std::move(run_row));
    }
    pdw::bench::appendRunRecord(obs_args, record);
  }

  if (expect_speedup >= 0.0 && latency_ratio < expect_speedup &&
      iter_ratio < expect_speedup) {
    std::fprintf(stderr,
                 "bench_rewash: FAIL speedup %.2fx (latency) / %.2fx "
                 "(iterations) both below expected %.2fx\n",
                 latency_ratio, iter_ratio, expect_speedup);
    ++failures;
  }

  obs_args.finish();
  return failures == 0 ? 0 : 1;
}
